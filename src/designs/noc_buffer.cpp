// O1 — OpenPiton NoC1-encoder buffer (simplified).
//
// A small FIFO that queues MSHR-tagged requests towards the NoC1 encoder —
// the module whose reuse in Mem Engine exposed the paper's Bug2 deadlock.
// BUG=1 reproduces the original behaviour: the buffer *assumes* the
// producer never exceeds its capacity (ready is unconditionally high), so
// an over-eager producer overwrites a queued entry, which then never
// reaches the encoder — the first liveness CEX in the paper's §IV. BUG=0
// applies the paper's fix: a "not-full" condition on the ack signal.
// The annotations mirror the paper's Fig. 7 (3 lines of code).
#include "designs/designs.hpp"

namespace autosva::designs {

const char* const kNocBufferRtl = R"(
module noc_buffer #(
  parameter MSHR_W = 2,
  parameter DEPTH  = 2,
  parameter BUG    = 0
) (
  input  wire clk_i,
  input  wire rst_ni,

  /*AUTOSVA
  mem_engine_noc: noc1buffer_req -in> noc1buffer_enc
  [MSHR_W-1:0] noc1buffer_req_transid = noc1buffer_req_mshrid_i
  [MSHR_W-1:0] noc1buffer_enc_transid = noc1buffer_enc_mshrid_o
  noc1buffer_req_val = noc1buffer_req_val_i
  noc1buffer_req_ack = noc1buffer_req_rdy_o
  noc1buffer_enc_val = noc1buffer_enc_val_o
  noc1buffer_enc_ack = noc1buffer_enc_rdy_i
  */

  // Producer side (Mem Engine / L1.5 miss unit).
  input  wire              noc1buffer_req_val_i,
  output wire              noc1buffer_req_rdy_o,
  input  wire [MSHR_W-1:0] noc1buffer_req_mshrid_i,
  // Consumer side (NoC1 encoder).
  output wire              noc1buffer_enc_val_o,
  input  wire              noc1buffer_enc_rdy_i,
  output wire [MSHR_W-1:0] noc1buffer_enc_mshrid_o
);

  reg [MSHR_W-1:0] fifo_q [0:DEPTH-1];
  reg              wr_q;
  reg              rd_q;
  reg [1:0]        count_q;

  wire full  = count_q == DEPTH;
  wire empty = count_q == 2'd0;

  // BUG: the buffer trusts the producer to respect its capacity.
  assign noc1buffer_req_rdy_o = (BUG != 0) ? 1'b1 : !full;
  wire wr_hsk = noc1buffer_req_val_i && noc1buffer_req_rdy_o;

  assign noc1buffer_enc_val_o    = !empty;
  assign noc1buffer_enc_mshrid_o = fifo_q[rd_q];
  wire rd_hsk = noc1buffer_enc_val_o && noc1buffer_enc_rdy_i;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      wr_q <= 1'b0;
      rd_q <= 1'b0;
      count_q <= 2'd0;
      fifo_q[0] <= '0;
      fifo_q[1] <= '0;
    end else begin
      if (wr_hsk) begin
        // On overflow (BUG only) this overwrites the oldest queued entry,
        // which is then lost forever.
        fifo_q[wr_q] <= noc1buffer_req_mshrid_i;
        wr_q <= !wr_q;
      end
      if (wr_hsk && !rd_hsk) begin
        if (!full) begin
          count_q <= count_q + 2'd1;
        end
      end else if (!wr_hsk && rd_hsk) begin
        count_q <= count_q - 2'd1;
      end
      if (rd_hsk) begin
        rd_q <= !rd_q;
      end
    end
  end

endmodule
)";

} // namespace autosva::designs
