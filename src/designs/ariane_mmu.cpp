// A3 — Memory Management Unit (Ariane-style, simplified).
//
// Wraps embedded single-entry micro-DTLB/ITLBs plus an ariane_ptw instance.
// Two request channels: lsu (data translation, with a misaligned-access
// fast path) and fetch (instruction translation).
//
// Seeded bugs, matching the paper's §IV narrative:
//  * BUG=1 — "Bug1, ghost response": a misaligned LSU request is answered
//    immediately with an exception, but the TLB miss still activates the
//    PTW; when the walk page-faults the MMU raises a *second* response.
//    Found as a safety CEX (response without a request) in ~5 cycles.
//    The fix (BUG=0) masks the walk request with the misaligned flag.
//  * Arbitration fairness: instruction walks yield to any LSU activity
//    (naive static priority), so an environment that issues back-to-back
//    LSU requests starves the fetch channel — the paper's "interesting CEX"
//    that "cannot happen in practice since one instruction cannot do many
//    DTLB lookups". kArianeMmuFairnessSva carries the assumption that
//    removes it (an FT extension bound to the MMU).
#include "designs/designs.hpp"

namespace autosva::designs {

const char* const kArianeMmuRtl = R"(
module ariane_mmu #(
  parameter VADDR_W = 3,
  parameter PADDR_W = 3,
  parameter BUG = 0
) (
  input  wire clk_i,
  input  wire rst_ni,

  /*AUTOSVA
  lsu_mmu: lsu_req -in> lsu_res
  lsu_req_val = lsu_req_val_i
  lsu_req_ack = lsu_req_rdy_o
  [VADDR_W:0] lsu_req_stable = {lsu_req_vaddr_i, lsu_req_misaligned_i}
  lsu_res_val = lsu_res_val_o

  fetch_mmu: fetch_req -in> fetch_res
  fetch_req_val = fetch_req_val_i
  fetch_req_ack = fetch_req_rdy_o
  [VADDR_W-1:0] fetch_req_stable = fetch_req_vaddr_i
  fetch_res_val = fetch_res_val_o

  mmu_dcache: mmu_req -out> mmu_res
  mmu_req_val = dreq_val_o
  mmu_req_ack = dreq_gnt_i
  mmu_res_val = dres_val_i
  */

  // LSU translation channel.
  input  wire               lsu_req_val_i,
  output wire               lsu_req_rdy_o,
  input  wire [VADDR_W-1:0] lsu_req_vaddr_i,
  input  wire               lsu_req_misaligned_i,
  output wire               lsu_res_val_o,
  output wire               lsu_res_exception_o,
  output wire [PADDR_W-1:0] lsu_res_paddr_o,
  // Fetch translation channel.
  input  wire               fetch_req_val_i,
  output wire               fetch_req_rdy_o,
  input  wire [VADDR_W-1:0] fetch_req_vaddr_i,
  output wire               fetch_res_val_o,
  output wire               fetch_res_exception_o,
  output wire [PADDR_W-1:0] fetch_res_paddr_o,
  // D-cache port (used by the PTW).
  output wire               dreq_val_o,
  input  wire               dreq_gnt_i,
  input  wire               dres_val_i,
  input  wire [PADDR_W-1:0] dres_data_i,
  input  wire               dres_fault_i
);

  // ---------------- Embedded DTLB (1-entry micro-TLB) ----------------
  reg               d_valid_q;
  reg [VADDR_W-1:0] d_tag_q;
  reg [PADDR_W-1:0] d_data_q;

  // ---------------- Embedded ITLB (1-entry micro-TLB) ----------------
  reg               i_valid_q;
  reg [VADDR_W-1:0] i_tag_q;
  reg [PADDR_W-1:0] i_data_q;

  // ---------------- LSU (data) channel ----------------
  reg               d_busy_q;
  reg               d_mis_q;
  reg [VADDR_W-1:0] d_vaddr_q;
  reg               d_walk_pend_q;
  reg               d_started_q;
  reg               d_serving_q;

  assign lsu_req_rdy_o = !d_busy_q;
  wire d_hsk = lsu_req_val_i && lsu_req_rdy_o;

  wire dtlb_hit = d_valid_q && d_tag_q == d_vaddr_q;

  // ---------------- Fetch (instruction) channel ----------------
  reg               i_busy_q;
  reg [VADDR_W-1:0] i_vaddr_q;
  reg               i_walk_pend_q;
  reg               i_started_q;
  reg               i_serving_q;

  assign fetch_req_rdy_o = !i_busy_q;
  wire i_hsk = fetch_req_val_i && fetch_req_rdy_o;

  wire itlb_hit = i_valid_q && i_tag_q == i_vaddr_q;

  // ---------------- PTW instance + walk arbitration ----------------
  wire ptw_update_valid;
  wire [PADDR_W-1:0] ptw_update_paddr;
  wire [VADDR_W-1:0] ptw_update_vaddr;
  wire ptw_error;
  wire ptw_active;

  wire d_walk_req = d_walk_pend_q && !d_started_q;
  wire i_walk_req = i_walk_pend_q && !i_started_q;
  // Naive arbitration: data walks have static priority, and instruction
  // walks additionally yield to any LSU activity (the fairness hazard).
  wire i_grantable = i_walk_req && !lsu_req_val_i;
  wire walk_any = d_walk_req || i_grantable;
  wire [VADDR_W-1:0] walk_vaddr = d_walk_req ? d_vaddr_q : i_vaddr_q;
  wire walk_hsk = walk_any && !ptw_active;

  ariane_ptw #(.VADDR_W(VADDR_W), .PADDR_W(PADDR_W)) ptw_i (
    .clk_i              (clk_i),
    .rst_ni             (rst_ni),
    .dtlb_miss_i        (walk_any),
    .dtlb_vaddr_i       (walk_vaddr),
    .ptw_update_valid_o (ptw_update_valid),
    .ptw_update_paddr_o (ptw_update_paddr),
    .ptw_update_vaddr_o (ptw_update_vaddr),
    .ptw_error_o        (ptw_error),
    .ptw_active_o       (ptw_active),
    .dreq_val_o         (dreq_val_o),
    .dreq_gnt_i         (dreq_gnt_i),
    .dres_val_i         (dres_val_i),
    .dres_data_i        (dres_data_i),
    .dres_fault_i       (dres_fault_i)
  );

  // ---------------- Responses ----------------
  wire d_resp_mis = d_busy_q && d_mis_q;
  wire d_resp_hit = d_busy_q && !d_mis_q && dtlb_hit;
  wire d_resp_err = d_serving_q && ptw_error;
  assign lsu_res_val_o       = d_resp_mis || d_resp_hit || d_resp_err;
  assign lsu_res_exception_o = d_resp_mis || d_resp_err;
  assign lsu_res_paddr_o     = d_data_q;

  wire i_resp_hit = i_busy_q && itlb_hit;
  wire i_resp_err = i_serving_q && ptw_error;
  assign fetch_res_val_o       = i_resp_hit || i_resp_err;
  assign fetch_res_exception_o = i_resp_err;
  assign fetch_res_paddr_o     = i_data_q;

  // The walk is only started for well-formed (aligned) requests in the
  // fixed design; BUG=1 removes the mask — the ghost-response bug.
  wire d_mis_gate = (BUG != 0) ? 1'b0 : d_mis_q;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      d_busy_q <= 1'b0;
      d_mis_q <= 1'b0;
      d_vaddr_q <= '0;
      d_walk_pend_q <= 1'b0;
      d_started_q <= 1'b0;
      d_serving_q <= 1'b0;
      d_valid_q <= 1'b0;
      d_tag_q <= '0;
      d_data_q <= '0;
      i_busy_q <= 1'b0;
      i_vaddr_q <= '0;
      i_walk_pend_q <= 1'b0;
      i_started_q <= 1'b0;
      i_serving_q <= 1'b0;
      i_valid_q <= 1'b0;
      i_tag_q <= '0;
      i_data_q <= '0;
    end else begin
      // LSU channel bookkeeping.
      if (d_hsk) begin
        d_busy_q  <= 1'b1;
        d_mis_q   <= lsu_req_misaligned_i;
        d_vaddr_q <= lsu_req_vaddr_i;
      end else if (lsu_res_val_o) begin
        d_busy_q <= 1'b0;
      end
      if (d_busy_q && !dtlb_hit && !d_mis_gate && !d_walk_pend_q && !d_serving_q) begin
        d_walk_pend_q <= 1'b1;
      end
      if (walk_hsk && d_walk_req) begin
        d_started_q <= 1'b1;
        d_serving_q <= 1'b1;
      end
      if (d_serving_q && (ptw_update_valid || ptw_error)) begin
        d_walk_pend_q <= 1'b0;
        d_started_q <= 1'b0;
        d_serving_q <= 1'b0;
      end
      // DTLB fill.
      if (d_serving_q && ptw_update_valid) begin
        d_valid_q <= 1'b1;
        d_tag_q   <= ptw_update_vaddr;
        d_data_q  <= ptw_update_paddr;
      end

      // Fetch channel bookkeeping.
      if (i_hsk) begin
        i_busy_q  <= 1'b1;
        i_vaddr_q <= fetch_req_vaddr_i;
      end else if (fetch_res_val_o) begin
        i_busy_q <= 1'b0;
      end
      if (i_busy_q && !itlb_hit && !i_walk_pend_q && !i_serving_q) begin
        i_walk_pend_q <= 1'b1;
      end
      if (walk_hsk && !d_walk_req) begin
        i_started_q <= 1'b1;
        i_serving_q <= 1'b1;
      end
      if (i_serving_q && (ptw_update_valid || ptw_error)) begin
        i_walk_pend_q <= 1'b0;
        i_started_q <= 1'b0;
        i_serving_q <= 1'b0;
      end
      // ITLB fill.
      if (i_serving_q && ptw_update_valid) begin
        i_valid_q <= 1'b1;
        i_tag_q   <= ptw_update_vaddr;
        i_data_q  <= ptw_update_paddr;
      end
    end
  end

endmodule
)";

// FT extension (paper §IV): the assumption added after the arbitration-
// fairness CEX — "one instruction cannot do many DTLB lookups" — modeled as
// "the LSU does not issue back-to-back requests".
const char* const kArianeMmuFairnessSva = R"(
module ariane_mmu_fair_env (
  input wire clk_i,
  input wire rst_ni,
  input wire lsu_req_val_i
);
  default clocking cb @(posedge clk_i); endclocking
  default disable iff (!rst_ni);
  // "One instruction cannot do many DTLB lookups": LSU requests are not
  // back-to-back, and the LSU channel is idle infinitely often (the
  // fairness form of the same fact, which liveness engines exploit
  // directly).
  am__lsu_no_back_to_back: assume property (lsu_req_val_i |=> !lsu_req_val_i);
  am__lsu_eventually_idle: assume property (s_eventually (!lsu_req_val_i));
endmodule

bind ariane_mmu ariane_mmu_fair_env fair_env_i (.*);
)";

} // namespace autosva::designs
