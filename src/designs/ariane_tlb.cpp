// A2 — Translation Lookaside Buffer (Ariane-style, simplified).
//
// Fully-associative TLB with a registered one-cycle lookup, an update port
// (fill from the PTW) and a flush input. Round-robin replacement. Paper
// result: 100% liveness/safety proof. The lookup transaction carries the
// virtual address as `data` so the generated FT checks the response answers
// the address that was asked (data integrity).
#include "designs/designs.hpp"

namespace autosva::designs {

const char* const kArianeTlbRtl = R"(
module ariane_tlb #(
  parameter VADDR_W = 4,
  parameter PADDR_W = 4,
  parameter ENTRIES = 2
) (
  input  wire clk_i,
  input  wire rst_ni,

  /*AUTOSVA
  tlb_lookup: lu -in> lu_res
  lu_val = lu_req_i
  lu_ack = lu_rdy_o
  [VADDR_W-1:0] lu_stable = lu_vaddr_i
  [VADDR_W-1:0] lu_data = lu_vaddr_i
  lu_res_val = lu_res_val_o
  [VADDR_W-1:0] lu_res_data = lu_res_vaddr_o
  */

  // Lookup request.
  input  wire               lu_req_i,
  output wire               lu_rdy_o,
  input  wire [VADDR_W-1:0] lu_vaddr_i,
  // Lookup response (one cycle later): hit flag + translation.
  output wire               lu_res_val_o,
  output wire               lu_res_hit_o,
  output wire [PADDR_W-1:0] lu_res_paddr_o,
  output wire [VADDR_W-1:0] lu_res_vaddr_o,
  // Fill port (from the PTW).
  input  wire               up_val_i,
  input  wire [VADDR_W-1:0] up_vaddr_i,
  input  wire [PADDR_W-1:0] up_paddr_i,
  // Flush (e.g. sfence.vma).
  input  wire               flush_i
);

  reg               busy_q;
  reg [VADDR_W-1:0] vaddr_q;

  reg [ENTRIES-1:0] valid_q;
  reg [VADDR_W-1:0] tag_q  [0:ENTRIES-1];
  reg [PADDR_W-1:0] data_q [0:ENTRIES-1];
  reg               repl_q; // Round-robin replacement pointer (2 entries).

  assign lu_rdy_o = !busy_q;
  wire lu_hsk = lu_req_i && lu_rdy_o;

  // Associative match on the registered address.
  wire hit0 = valid_q[0] && tag_q[0] == vaddr_q;
  wire hit1 = valid_q[1] && tag_q[1] == vaddr_q;

  assign lu_res_val_o   = busy_q;
  assign lu_res_hit_o   = hit0 || hit1;
  assign lu_res_paddr_o = hit0 ? data_q[0] : data_q[1];
  assign lu_res_vaddr_o = vaddr_q;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      busy_q  <= 1'b0;
      vaddr_q <= '0;
      valid_q <= '0;
      repl_q  <= 1'b0;
    end else begin
      if (lu_hsk) begin
        busy_q  <= 1'b1;
        vaddr_q <= lu_vaddr_i;
      end else begin
        busy_q <= 1'b0;
      end

      if (flush_i) begin
        valid_q <= '0;
      end else if (up_val_i) begin
        valid_q[repl_q]  <= 1'b1;
        tag_q[repl_q]    <= up_vaddr_i;
        data_q[repl_q]   <= up_paddr_i;
        repl_q           <= !repl_q;
      end
    end
  end

endmodule
)";

} // namespace autosva::designs
