// A4 — Load unit of the Load-Store Unit (Ariane-style, simplified).
//
// Loads carry a transaction ID (the paper's Fig. 2/3 example interface).
// Requests are queued, issued to the D-cache in order, and answered with
// the same trans ID. Paper result: "Hit known bug (issue #538)" — an
// ongoing load is killed by an exception caused by a later operation, so
// its response never appears. BUG=1 seeds that behaviour (a flush clears
// the whole queue, dropping in-flight loads); BUG=0 is the repaired design:
// flushed loads are marked killed but still complete their handshake
// (flagged as exceptions), and an already-issued memory access is never
// abandoned.
#include "designs/designs.hpp"

namespace autosva::designs {

const char* const kArianeLsuRtl = R"(
module ariane_lsu #(
  parameter ID_W   = 2,
  parameter DEPTH  = 2,
  parameter BUG    = 0
) (
  input  wire clk_i,
  input  wire rst_ni,

  /*AUTOSVA
  lsu_load: lsu_req -in> lsu_res
  lsu_req_val = lsu_req_val_i
  lsu_req_ack = lsu_req_rdy_o
  [ID_W-1:0] lsu_req_transid_unique = lsu_req_transid_i
  [ID_W-1:0] lsu_req_stable = lsu_req_transid_i
  lsu_res_val = lsu_res_val_o
  [ID_W-1:0] lsu_res_transid = lsu_res_transid_o

  lsu_dcache: dreq -out> dres
  dreq_val = dreq_val_o
  dreq_ack = dreq_gnt_i
  dres_val = dres_val_i
  */

  // Load request (from issue stage).
  input  wire            lsu_req_val_i,
  output wire            lsu_req_rdy_o,
  input  wire [ID_W-1:0] lsu_req_transid_i,
  // Load response (writeback).
  output wire            lsu_res_val_o,
  output wire [ID_W-1:0] lsu_res_transid_o,
  output wire            lsu_res_exception_o,
  // Exception/flush caused by a later operation.
  input  wire            flush_i,
  // D-cache port.
  output wire            dreq_val_o,
  input  wire            dreq_gnt_i,
  input  wire            dres_val_i
);

  // In-order load queue: FIFO of transaction IDs with per-entry kill marks.
  reg [ID_W-1:0] queue_q  [0:DEPTH-1];
  reg            killed_q [0:DEPTH-1];
  reg [1:0]      count_q;
  reg            head_issued_q; // Head's memory access granted.

  assign lsu_req_rdy_o = count_q < DEPTH;
  wire req_hsk = lsu_req_val_i && lsu_req_rdy_o;

  wire head_valid = count_q != 2'd0;
  // Issue the head to memory unless it was killed before being issued.
  assign dreq_val_o = head_valid && !head_issued_q && !killed_q[0];
  wire dreq_hsk = dreq_val_o && dreq_gnt_i;

  // Retirement:
  //  * mem_done  — the D-cache answered (possibly in the grant cycle);
  //                an issued-but-killed load still waits for this.
  //  * kill_done — a killed load that never reached memory retires
  //                immediately with the exception flag.
  wire mem_done  = head_valid && dres_val_i && (head_issued_q || dreq_hsk);
  wire kill_done = head_valid && killed_q[0] && !head_issued_q && !dreq_hsk;
  assign lsu_res_val_o       = mem_done || kill_done;
  assign lsu_res_transid_o   = queue_q[0];
  assign lsu_res_exception_o = killed_q[0];

  wire pop = lsu_res_val_o;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      count_q <= 2'd0;
      head_issued_q <= 1'b0;
      killed_q[0] <= 1'b0;
      killed_q[1] <= 1'b0;
      queue_q[0] <= '0;
      queue_q[1] <= '0;
    end else begin
      if (BUG != 0 && flush_i) begin
        // BUG (issue #538): the exception of a later operation clears the
        // whole queue — in-flight loads never respond.
        count_q <= 2'd0;
        head_issued_q <= 1'b0;
        killed_q[0] <= 1'b0;
        killed_q[1] <= 1'b0;
      end else begin
        // Fixed design: a flush marks queued loads as killed; they still
        // complete their handshakes.
        if (flush_i) begin
          killed_q[0] <= killed_q[0] || count_q > 2'd0;
          killed_q[1] <= killed_q[1] || count_q > 2'd1;
        end
        if (req_hsk && pop) begin
          queue_q[0]  <= count_q > 2'd1 ? queue_q[1] : lsu_req_transid_i;
          killed_q[0] <= count_q > 2'd1 ? (killed_q[1] || flush_i) : flush_i;
          queue_q[1]  <= lsu_req_transid_i;
          killed_q[1] <= flush_i;
          head_issued_q <= 1'b0;
        end else if (req_hsk) begin
          queue_q[count_q] <= lsu_req_transid_i;
          if (count_q == 2'd0) begin
            killed_q[0] <= flush_i;
          end else begin
            killed_q[1] <= flush_i;
          end
          count_q <= count_q + 2'd1;
        end else if (pop) begin
          queue_q[0]  <= queue_q[1];
          killed_q[0] <= killed_q[1] || (flush_i && count_q > 2'd1);
          killed_q[1] <= 1'b0;
          count_q <= count_q - 2'd1;
          head_issued_q <= 1'b0;
        end
        // Mark the head issued unless it retires in this same cycle.
        if (dreq_hsk && !pop) begin
          head_issued_q <= 1'b1;
        end
      end
    end
  end

endmodule
)";

} // namespace autosva::designs
