// ME — Mem Engine (the paper's early-stage unit, §IV "Bug2").
//
// A new unit that connects to OpenPiton's NoC1 by reusing the encoder
// buffer. Each command triggers a burst of four tagged requests — more
// than the buffer's two entries. With the original buffer (BUG=1), the
// burst overflows it, a queued entry is silently overwritten, the drain
// counter never completes, and the command never finishes: the deadlock
// the paper found from the very first liveness CEX. With the fixed buffer
// (BUG=0, "not-full" ack) everything proves.
//
// This is the paper's Test-Driven-Development showcase: the FT existed
// before the unit was finished, and the CEX appeared with 3 lines of
// annotations on the buffer.
#include "designs/designs.hpp"

namespace autosva::designs {

const char* const kMemEngineRtl = R"(
module mem_engine #(
  parameter MSHR_W = 2,
  parameter BURST  = 4,
  parameter BUG    = 0
) (
  input  wire clk_i,
  input  wire rst_ni,

  /*AUTOSVA
  me_cmd: cmd -in> done
  cmd_val = cmd_val_i
  cmd_ack = cmd_rdy_o
  done_val = done_val_o
  */

  // Command interface: one command = one burst of BURST requests.
  input  wire              cmd_val_i,
  output wire              cmd_rdy_o,
  output wire              done_val_o,
  // NoC1 encoder channel (driven through the reused buffer).
  output wire              enc_val_o,
  input  wire              enc_rdy_i,
  output wire [MSHR_W-1:0] enc_mshrid_o
);

  reg       active_q;
  reg [2:0] sent_q;
  reg [2:0] drained_q;

  assign cmd_rdy_o = !active_q;
  wire cmd_hsk = cmd_val_i && cmd_rdy_o;

  // Push the burst into the buffer as fast as it accepts.
  wire buf_rdy;
  wire push_val = active_q && sent_q < BURST;
  wire push_hsk = push_val && buf_rdy;

  noc_buffer #(.MSHR_W(MSHR_W), .DEPTH(2), .BUG(BUG)) noc1buffer_i (
    .clk_i                   (clk_i),
    .rst_ni                  (rst_ni),
    .noc1buffer_req_val_i    (push_val),
    .noc1buffer_req_rdy_o    (buf_rdy),
    .noc1buffer_req_mshrid_i (sent_q[1:0]),
    .noc1buffer_enc_val_o    (enc_val_o),
    .noc1buffer_enc_rdy_i    (enc_rdy_i),
    .noc1buffer_enc_mshrid_o (enc_mshrid_o)
  );

  wire drain_hsk = enc_val_o && enc_rdy_i;
  assign done_val_o = active_q && drained_q == BURST;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      active_q  <= 1'b0;
      sent_q    <= 3'd0;
      drained_q <= 3'd0;
    end else begin
      if (cmd_hsk) begin
        active_q  <= 1'b1;
        sent_q    <= 3'd0;
        drained_q <= 3'd0;
      end else if (done_val_o) begin
        active_q <= 1'b0;
      end else begin
        if (push_hsk) begin
          sent_q <= sent_q + 3'd1;
        end
        if (drain_hsk) begin
          drained_q <= drained_q + 3'd1;
        end
      end
    end
  end

endmodule
)";

} // namespace autosva::designs
