// A1 — Page Table Walker (Ariane-style, simplified).
//
// Two-level walk FSM: a DTLB miss starts a walk; each level issues a
// D-cache request and waits for the response; the final level produces a
// TLB update (or a page-fault error). Paper result: 100% liveness/safety
// proof. Annotations follow the paper's Fig. 7 (dtlb_ptw incoming,
// ptw_dcache outgoing).
#include "designs/designs.hpp"

namespace autosva::designs {

const char* const kArianePtwRtl = R"(
module ariane_ptw #(
  parameter VADDR_W = 4,
  parameter PADDR_W = 4
) (
  input  wire clk_i,
  input  wire rst_ni,

  /*AUTOSVA
  dtlb_ptw: dtlb -in> ptw_update
  dtlb_val = dtlb_miss_i
  dtlb_ack = !ptw_active_o
  dtlb_active = ptw_active_o
  [VADDR_W-1:0] dtlb_stable = dtlb_vaddr_i
  [VADDR_W-1:0] dtlb_data = dtlb_vaddr_i
  ptw_update_val = ptw_update_valid_o || ptw_error_o
  [VADDR_W-1:0] ptw_update_data = ptw_update_vaddr_o

  ptw_dcache: ptw_req -out> dcache_res
  ptw_req_val = dreq_val_o
  ptw_req_ack = dreq_gnt_i
  dcache_res_val = dres_val_i
  */

  // DTLB-miss request interface.
  input  wire               dtlb_miss_i,
  input  wire [VADDR_W-1:0] dtlb_vaddr_i,
  // Walk result: TLB update or page-fault error.
  output wire               ptw_update_valid_o,
  output wire [PADDR_W-1:0] ptw_update_paddr_o,
  output wire [VADDR_W-1:0] ptw_update_vaddr_o,
  output wire               ptw_error_o,
  output wire               ptw_active_o,
  // D-cache request port (one access per walk level).
  output wire               dreq_val_o,
  input  wire               dreq_gnt_i,
  input  wire               dres_val_i,
  input  wire [PADDR_W-1:0] dres_data_i,
  input  wire               dres_fault_i
);

  localparam S_IDLE = 2'd0;
  localparam S_REQ  = 2'd1;
  localparam S_WAIT = 2'd2;

  reg [1:0]         state_q;
  reg               level_q;   // 0 = first level, 1 = leaf level.
  reg [VADDR_W-1:0] vaddr_q;
  reg [PADDR_W-1:0] pte_q;

  assign ptw_active_o = state_q != S_IDLE;
  wire start_walk = dtlb_miss_i && !ptw_active_o;

  assign dreq_val_o = state_q == S_REQ;
  // The D-cache may answer in the same cycle it grants the request
  // (combinational hit) or any number of cycles later.
  wire resp_now = dres_val_i &&
                  (state_q == S_WAIT || (state_q == S_REQ && dreq_gnt_i));
  wire walk_done  = resp_now && !dres_fault_i && level_q;
  wire walk_fault = resp_now && dres_fault_i;

  assign ptw_update_valid_o = walk_done;
  assign ptw_error_o        = walk_fault;
  assign ptw_update_paddr_o = pte_q;
  assign ptw_update_vaddr_o = vaddr_q;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      state_q <= S_IDLE;
      level_q <= 1'b0;
      vaddr_q <= '0;
      pte_q   <= '0;
    end else begin
      case (state_q)
        S_IDLE: begin
          if (start_walk) begin
            state_q <= S_REQ;
            level_q <= 1'b0;
            vaddr_q <= dtlb_vaddr_i;
          end
        end
        S_REQ: begin
          if (dreq_gnt_i) begin
            if (resp_now) begin
              pte_q <= dres_data_i;
              if (dres_fault_i || level_q) begin
                state_q <= S_IDLE;
              end else begin
                level_q <= 1'b1; // Same-cycle answer: issue the next level.
              end
            end else begin
              state_q <= S_WAIT;
            end
          end
        end
        S_WAIT: begin
          if (resp_now) begin
            pte_q <= dres_data_i;
            if (dres_fault_i || level_q) begin
              state_q <= S_IDLE; // Fault or leaf reached: walk finished.
            end else begin
              state_q <= S_REQ;  // Next level.
              level_q <= 1'b1;
            end
          end
        end
        default: state_q <= S_IDLE;
      endcase
    end
  end

endmodule
)";

} // namespace autosva::designs
