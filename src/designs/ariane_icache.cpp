// A5 — L1 instruction cache (Ariane-style, simplified).
//
// Direct-mapped, two lines, refill over a memory port. A `kill_i` input
// (branch redirect) may arrive at any time. Paper result: "Hit known bug
// (issue #474)". BUG=1 seeds it: a kill that lands while a refill is in
// flight aborts the fetch without ever producing a response — the liveness
// assertion catches the dropped handshake. BUG=0 completes every accepted
// fetch (killed ones respond with the kill flag set).
#include "designs/designs.hpp"

namespace autosva::designs {

const char* const kArianeIcacheRtl = R"(
module ariane_icache #(
  parameter ADDR_W = 4,
  parameter DATA_W = 4,
  parameter BUG    = 0
) (
  input  wire clk_i,
  input  wire rst_ni,

  /*AUTOSVA
  fetch: fetch_req -in> fetch_res
  fetch_req_val = fetch_req_val_i
  fetch_req_ack = fetch_req_rdy_o
  [ADDR_W-1:0] fetch_req_data = fetch_req_addr_i
  fetch_res_val = fetch_res_val_o
  [ADDR_W-1:0] fetch_res_data = fetch_res_addr_o

  icache_mem: mem_req -out> mem_res
  mem_req_val = mem_req_val_o
  mem_req_ack = mem_req_gnt_i
  mem_res_val = mem_res_val_i
  */

  // Fetch request from the frontend.
  input  wire              fetch_req_val_i,
  output wire              fetch_req_rdy_o,
  input  wire [ADDR_W-1:0] fetch_req_addr_i,
  // Fetch response (data + echo of the address for integrity checking).
  output wire              fetch_res_val_o,
  output wire [DATA_W-1:0] fetch_res_data_o,
  output wire [ADDR_W-1:0] fetch_res_addr_o,
  output wire              fetch_res_killed_o,
  // Branch redirect.
  input  wire              kill_i,
  // Memory (refill) port.
  output wire              mem_req_val_o,
  input  wire              mem_req_gnt_i,
  output wire [ADDR_W-1:0] mem_req_addr_o,
  input  wire              mem_res_val_i,
  input  wire [DATA_W-1:0] mem_res_data_i
);

  localparam S_IDLE   = 2'd0;
  localparam S_LOOKUP = 2'd1;
  localparam S_MISS   = 2'd2;
  localparam S_WAIT   = 2'd3;

  reg [1:0]        state_q;
  reg [ADDR_W-1:0] addr_q;
  reg              killed_q;

  // Two direct-mapped lines, indexed by addr[0].
  reg [1:0]        valid_q;
  reg [ADDR_W-1:0] tag_q  [0:1];
  reg [DATA_W-1:0] data_q [0:1];

  wire idx = addr_q[0];
  wire hit = valid_q[idx] && tag_q[idx] == addr_q;

  assign fetch_req_rdy_o = state_q == S_IDLE;
  wire fetch_hsk = fetch_req_val_i && fetch_req_rdy_o;

  assign mem_req_val_o  = state_q == S_MISS;
  assign mem_req_addr_o = addr_q;
  wire mem_hsk = mem_req_val_o && mem_req_gnt_i;
  // The memory may answer in the grant cycle or later.
  wire refill_done = mem_res_val_i && (state_q == S_WAIT || mem_hsk);

  wire lookup_resp = state_q == S_LOOKUP && (hit || killed_q || kill_i);
  assign fetch_res_val_o    = lookup_resp || refill_done;
  assign fetch_res_data_o   = refill_done ? mem_res_data_i : data_q[idx];
  assign fetch_res_addr_o   = addr_q;
  assign fetch_res_killed_o = killed_q || kill_i;

  always_ff @(posedge clk_i or negedge rst_ni) begin
    if (!rst_ni) begin
      state_q  <= S_IDLE;
      addr_q   <= '0;
      killed_q <= 1'b0;
      valid_q  <= '0;
    end else begin
      case (state_q)
        S_IDLE: begin
          if (fetch_hsk) begin
            state_q  <= S_LOOKUP;
            addr_q   <= fetch_req_addr_i;
            killed_q <= kill_i;
          end
        end
        S_LOOKUP: begin
          if (kill_i || killed_q) begin
            // Killed fetches respond immediately (flagged) and retire.
            state_q  <= S_IDLE;
            killed_q <= 1'b1;
          end else if (hit) begin
            state_q <= S_IDLE;
          end else begin
            state_q <= S_MISS;
          end
        end
        S_MISS: begin
          if (kill_i) begin
            // BUG (issue #474): a kill during the refill abandons the fetch
            // without a response. The fix completes the handshake.
            if (BUG != 0) begin
              state_q <= S_IDLE;
            end else begin
              killed_q <= 1'b1;
            end
          end
          if (mem_hsk) begin
            if (mem_res_val_i && !(kill_i && BUG != 0)) begin
              state_q <= S_IDLE; // Same-cycle refill.
              valid_q[idx] <= 1'b1;
              tag_q[idx]   <= addr_q;
              data_q[idx]  <= mem_res_data_i;
            end else begin
              state_q <= S_WAIT;
            end
          end
        end
        S_WAIT: begin
          if (kill_i && BUG != 0) begin
            state_q <= S_IDLE; // BUG: drops both the fetch and the refill.
          end else if (mem_res_val_i) begin
            state_q <= S_IDLE;
            valid_q[idx] <= 1'b1;
            tag_q[idx]   <= addr_q;
            data_q[idx]  <= mem_res_data_i;
            if (kill_i) begin
              killed_q <= 1'b1;
            end
          end else if (kill_i) begin
            killed_q <= 1'b1;
          end
        end
        default: state_q <= S_IDLE;
      endcase
    end
  end

endmodule
)";

} // namespace autosva::designs
