#include "util/table.hpp"

#include <algorithm>

namespace autosva::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::addRow(std::vector<std::string> cells) {
    Row r;
    r.cells = std::move(cells);
    r.separatorBefore = pendingSeparator_;
    pendingSeparator_ = false;
    rows_.push_back(std::move(r));
}

void TextTable::addSeparator() { pendingSeparator_ = true; }

std::string TextTable::str() const {
    std::vector<size_t> widths(header_.size(), 0);
    auto grow = [&](const std::vector<std::string>& cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i >= widths.size()) widths.resize(i + 1, 0);
            widths[i] = std::max(widths[i], cells[i].size());
        }
    };
    grow(header_);
    for (const auto& r : rows_) grow(r.cells);

    auto renderLine = [&](const std::vector<std::string>& cells) {
        std::string line = "|";
        for (size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            cell.resize(widths[i], ' ');
            line += " " + cell + " |";
        }
        line += '\n';
        return line;
    };
    auto renderSep = [&]() {
        std::string line = "+";
        for (size_t w : widths) line += std::string(w + 2, '-') + "+";
        line += '\n';
        return line;
    };

    std::string out = renderSep();
    out += renderLine(header_);
    out += renderSep();
    for (const auto& r : rows_) {
        if (r.separatorBefore) out += renderSep();
        out += renderLine(r.cells);
    }
    out += renderSep();
    return out;
}

} // namespace autosva::util
