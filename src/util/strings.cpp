#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace autosva::util {

namespace {
bool isSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
} // namespace

std::string_view trimLeft(std::string_view s) {
    size_t i = 0;
    while (i < s.size() && isSpace(s[i])) ++i;
    return s.substr(i);
}

std::string_view trimRight(std::string_view s) {
    size_t n = s.size();
    while (n > 0 && isSpace(s[n - 1])) --n;
    return s.substr(0, n);
}

std::string_view trim(std::string_view s) { return trimRight(trimLeft(s)); }

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string> splitLines(std::string_view s) {
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size()) {
            if (start < i || (!out.empty() && start == i)) out.emplace_back(s.substr(start, i - start));
            break;
        }
        if (s[i] == '\n') {
            size_t end = i;
            if (end > start && s[end - 1] == '\r') --end;
            out.emplace_back(s.substr(start, end - start));
            start = i + 1;
        }
    }
    return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i) out += sep;
        out += parts[i];
    }
    return out;
}

std::string toLower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

std::string toUpper(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    return out;
}

bool isIdentifier(std::string_view s) {
    if (s.empty()) return false;
    auto head = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
    };
    auto body = [&](char c) {
        return head(c) || std::isdigit(static_cast<unsigned char>(c)) || c == '$';
    };
    if (!head(s[0])) return false;
    return std::all_of(s.begin() + 1, s.end(), body);
}

std::string replaceAll(std::string s, std::string_view from, std::string_view to) {
    if (from.empty()) return s;
    size_t pos = 0;
    while ((pos = s.find(from, pos)) != std::string::npos) {
        s.replace(pos, from.size(), to);
        pos += to.size();
    }
    return s;
}

std::string indent(std::string_view text, int spaces) {
    const std::string pad(static_cast<size_t>(spaces), ' ');
    std::string out;
    for (const auto& line : splitLines(text)) {
        if (!line.empty()) out += pad;
        out += line;
        out += '\n';
    }
    return out;
}

} // namespace autosva::util
