// Small string helpers shared by the frontend, generator, and report code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace autosva::util {

[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] std::string_view trimLeft(std::string_view s);
[[nodiscard]] std::string_view trimRight(std::string_view s);

/// Split on a single character; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Split into lines, handling both \n and \r\n; keeps empty lines.
[[nodiscard]] std::vector<std::string> splitLines(std::string_view s);

[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

[[nodiscard]] std::string toLower(std::string_view s);
[[nodiscard]] std::string toUpper(std::string_view s);

[[nodiscard]] bool isIdentifier(std::string_view s);

/// Replace all occurrences of `from` with `to`.
[[nodiscard]] std::string replaceAll(std::string s, std::string_view from, std::string_view to);

/// Indent every non-empty line with `spaces` spaces.
[[nodiscard]] std::string indent(std::string_view text, int spaces);

} // namespace autosva::util
