// Source locations for diagnostics across the Verilog frontend and the
// AutoSVA annotation parser.
#pragma once

#include <cstdint>
#include <string>

namespace autosva::util {

/// A position inside a named source buffer. Lines and columns are 1-based;
/// a value of 0 means "unknown".
struct SourceLoc {
    std::string file;   ///< Buffer name (file path or synthetic name).
    uint32_t line = 0;
    uint32_t col = 0;

    [[nodiscard]] bool valid() const { return line != 0; }

    [[nodiscard]] std::string str() const {
        if (!valid()) return file.empty() ? "<unknown>" : file;
        return file + ":" + std::to_string(line) + ":" + std::to_string(col);
    }
};

} // namespace autosva::util
