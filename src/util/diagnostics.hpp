// Diagnostic collection and the fatal-error exception used by all parsers
// and the elaborator.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "util/source_loc.hpp"

namespace autosva::util {

enum class Severity { Note, Warning, Error };

struct Diagnostic {
    Severity severity = Severity::Error;
    SourceLoc loc;
    std::string message;

    [[nodiscard]] std::string str() const;
};

/// Thrown on unrecoverable frontend errors (lexing, parsing, elaboration).
/// Carries the source location so callers can render a precise message.
class FrontendError : public std::runtime_error {
public:
    FrontendError(SourceLoc loc, const std::string& message)
        : std::runtime_error(loc.str() + ": error: " + message), loc_(std::move(loc)) {}

    [[nodiscard]] const SourceLoc& loc() const { return loc_; }

private:
    SourceLoc loc_;
};

/// Accumulates non-fatal diagnostics (warnings from the annotation parser,
/// lint notes from elaboration) so tools can report them in bulk.
class DiagEngine {
public:
    void report(Severity sev, SourceLoc loc, std::string message) {
        diags_.push_back({sev, std::move(loc), std::move(message)});
    }
    void warning(SourceLoc loc, std::string message) {
        report(Severity::Warning, std::move(loc), std::move(message));
    }
    void note(SourceLoc loc, std::string message) {
        report(Severity::Note, std::move(loc), std::move(message));
    }
    void error(SourceLoc loc, std::string message) {
        report(Severity::Error, std::move(loc), std::move(message));
    }

    [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diags_; }
    [[nodiscard]] bool hasErrors() const;
    [[nodiscard]] size_t count(Severity sev) const;
    [[nodiscard]] std::string str() const;
    void clear() { diags_.clear(); }

private:
    std::vector<Diagnostic> diags_;
};

} // namespace autosva::util
