#include "util/diagnostics.hpp"

namespace autosva::util {

namespace {
const char* severityName(Severity sev) {
    switch (sev) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
    }
    return "?";
}
} // namespace

std::string Diagnostic::str() const {
    return loc.str() + ": " + severityName(severity) + ": " + message;
}

bool DiagEngine::hasErrors() const {
    for (const auto& d : diags_)
        if (d.severity == Severity::Error) return true;
    return false;
}

size_t DiagEngine::count(Severity sev) const {
    size_t n = 0;
    for (const auto& d : diags_)
        if (d.severity == sev) ++n;
    return n;
}

std::string DiagEngine::str() const {
    std::string out;
    for (const auto& d : diags_) {
        out += d.str();
        out += '\n';
    }
    return out;
}

} // namespace autosva::util
