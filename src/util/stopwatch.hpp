// Wall-clock stopwatch for engine statistics and bench reporting.
#pragma once

#include <chrono>

namespace autosva::util {

class Stopwatch {
public:
    Stopwatch() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }
    [[nodiscard]] double millis() const { return seconds() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace autosva::util
