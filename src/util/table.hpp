// Aligned text-table rendering for bench/report output.
#pragma once

#include <string>
#include <vector>

namespace autosva::util {

/// Builds plain-text tables with aligned columns, used by the benchmark
/// harnesses to print the rows of the paper's tables.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);
    /// Inserts a horizontal separator line before the next row.
    void addSeparator();

    [[nodiscard]] std::string str() const;
    [[nodiscard]] size_t rowCount() const { return rows_.size(); }

private:
    struct Row {
        std::vector<std::string> cells;
        bool separatorBefore = false;
    };
    std::vector<std::string> header_;
    std::vector<Row> rows_;
    bool pendingSeparator_ = false;
};

} // namespace autosva::util
