// The run profiler behind `autosva profile` / `--profile`: folds one
// recorder's event stream into a per-obligation stage/time/query
// breakdown, a worker-utilization summary, the phase timeline, and cache
// effectiveness — and renders it as the human summary the CLI prints.
//
// Attribution invariant: every site that increments SharedStats::satCalls
// also emits a "queries" arg on an obligation-attributed span End or
// Counter event, so summing them reconciles exactly with
// EngineStats::satCalls (tests/test_obs.cpp gates this).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace autosva::sva {
struct VerificationReport;
}

namespace autosva::obs {

class Recorder;

/// Cost of one pipeline stage (span name) of one obligation.
struct StageCost {
    double seconds = 0.0;
    uint64_t queries = 0;
};

struct ObligationProfile {
    int64_t index = -1;
    std::string name;
    double seconds = 0.0;   ///< Engine time across all stages (span durations).
    uint64_t queries = 0;   ///< Attributed SAT queries across all stages.
    // PDR counters attributed to this obligation (span End / Counter args).
    uint64_t frames = 0;
    uint64_t cubes = 0;
    uint64_t drops = 0;
    uint64_t retries = 0;
    uint64_t seeds = 0;
    bool cacheHit = false;
    /// Per-stage breakdown in first-seen order (bmc, induction, pdr, ...).
    std::vector<std::pair<std::string, StageCost>> stages;
};

/// One scheduler-phase span ("phase" category), with its nesting depth for
/// indented timeline rendering.
struct PhaseSlice {
    std::string name;
    int depth = 0;
    double startSeconds = 0.0;
    double seconds = 0.0;
};

/// Busy time of one worker lane: the union of its top-level span intervals.
struct LaneLoad {
    int lane = 0;
    double busySeconds = 0.0;
    uint64_t spans = 0;
};

struct RunProfile {
    double wallSeconds = 0.0; ///< Last event timestamp (trace-window wall clock).
    uint64_t attributedQueries = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheSeedEvents = 0;
    uint64_t cacheStores = 0;
    std::vector<ObligationProfile> obligations; ///< Sorted by seconds, descending.
    std::vector<PhaseSlice> phases;
    std::vector<LaneLoad> lanes; ///< Worker lanes only (scheduler lane excluded).
};

/// Folds the recorder's merged event stream into a RunProfile. Call after
/// the run finished (all recording threads joined).
[[nodiscard]] RunProfile buildProfile(const Recorder& rec);

/// Human summary: top-K slowest properties with per-stage time/query
/// breakdowns, worker utilization, phase timeline, cache effectiveness,
/// and the queries-vs-EngineStats reconciliation line.
[[nodiscard]] std::string renderProfile(const RunProfile& profile,
                                        const sva::VerificationReport& report,
                                        size_t topK = 10);

} // namespace autosva::obs
