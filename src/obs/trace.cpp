#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace autosva::obs {

namespace {

thread_local int16_t tlsLane = kSchedulerLane;

/// Thread-local pointer to this thread's buffer in one specific recorder.
/// The id check (not the address) decides validity: a new Recorder can be
/// constructed at a freed one's address, and a stale pointer into it would
/// otherwise be revived.
thread_local uint64_t tlsRecorderId = 0;
thread_local void* tlsBuffer = nullptr;

std::atomic<uint64_t> nextRecorderId{1};

void jsonEscapeTo(std::string& out, const char* s) {
    for (; *s; ++s) {
        char c = *s;
        if (c == '"' || c == '\\') out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            out += ' ';
        else
            out += c;
    }
}

} // namespace

// ---------------------------------------------------------------------------
// LaneScope
// ---------------------------------------------------------------------------

LaneScope::LaneScope(int lane) : prev_(tlsLane) { tlsLane = static_cast<int16_t>(lane); }
LaneScope::~LaneScope() { tlsLane = prev_; }
int16_t LaneScope::current() { return tlsLane; }

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

Recorder::Recorder()
    : id_(nextRecorderId.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

void Recorder::setObligationNames(std::vector<std::string> names) {
    obNames_ = std::move(names);
}

std::string Recorder::obName(int64_t ob) const {
    if (ob < 0) return "-";
    if (static_cast<size_t>(ob) < obNames_.size()) return obNames_[static_cast<size_t>(ob)];
    return "ob-" + std::to_string(ob);
}

int64_t Recorder::now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

Recorder::Buffer& Recorder::localBuffer() {
    if (tlsRecorderId != id_) {
        std::lock_guard<std::mutex> lock(registry_);
        buffers_.push_back(std::make_unique<Buffer>());
        tlsBuffer = buffers_.back().get();
        tlsRecorderId = id_;
    }
    return *static_cast<Buffer*>(tlsBuffer);
}

void Recorder::record(TraceEvent::Kind kind, const char* cat, const char* name, int64_t ob,
                      std::initializer_list<TraceArg> args) {
    TraceEvent ev;
    ev.kind = kind;
    ev.lane = LaneScope::current();
    ev.cat = cat;
    ev.name = name;
    ev.ob = ob;
    ev.ts = now();
    for (const TraceArg& a : args) {
        if (ev.numArgs >= ev.args.size()) break;
        ev.args[ev.numArgs++] = a;
    }
    localBuffer().events.push_back(ev);
}

std::vector<TraceEvent> Recorder::merged() const {
    std::vector<TraceEvent> all;
    {
        std::lock_guard<std::mutex> lock(registry_);
        size_t total = 0;
        for (const auto& b : buffers_) total += b->events.size();
        all.reserve(total);
        for (const auto& b : buffers_)
            all.insert(all.end(), b->events.begin(), b->events.end());
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent& a, const TraceEvent& b) { return a.ts < b.ts; });
    return all;
}

size_t Recorder::eventCount() const {
    std::lock_guard<std::mutex> lock(registry_);
    size_t total = 0;
    for (const auto& b : buffers_) total += b->events.size();
    return total;
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

Span::Span(Recorder* rec, const char* cat, const char* name, int64_t ob)
    : rec_(rec), cat_(cat), name_(name), ob_(ob) {
    if (rec_) rec_->record(TraceEvent::Kind::Begin, cat_, name_, ob_);
}

Span::~Span() { end(); }

void Span::end() {
    if (!rec_) return;
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::End;
    ev.lane = LaneScope::current();
    ev.cat = cat_;
    ev.name = name_;
    ev.ob = ob_;
    ev.ts = rec_->now();
    ev.numArgs = numArgs_;
    ev.args = args_;
    rec_->localBuffer().events.push_back(ev);
    rec_ = nullptr;
}

void Span::arg(const char* key, uint64_t val) {
    if (!rec_ || numArgs_ >= args_.size()) return;
    args_[numArgs_++] = {key, val};
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

namespace {

void appendArgsJson(std::string& out, const Recorder& rec, const TraceEvent& ev) {
    out += "{\"ob\": \"";
    jsonEscapeTo(out, rec.obName(ev.ob).c_str());
    out += '"';
    for (uint8_t i = 0; i < ev.numArgs; ++i) {
        out += ", \"";
        jsonEscapeTo(out, ev.args[i].key);
        out += "\": ";
        out += std::to_string(ev.args[i].val);
    }
    out += '}';
}

} // namespace

void writeChromeTrace(const Recorder& rec, std::ostream& out) {
    const std::vector<TraceEvent> events = rec.merged();
    // Lanes present in the trace, for the thread_name metadata rows.
    std::vector<int16_t> lanes;
    for (const TraceEvent& ev : events)
        if (std::find(lanes.begin(), lanes.end(), ev.lane) == lanes.end())
            lanes.push_back(ev.lane);
    std::sort(lanes.begin(), lanes.end());

    std::string buf;
    out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    for (int16_t lane : lanes) {
        buf.clear();
        buf += first ? "\n" : ",\n";
        first = false;
        buf += "{\"ph\": \"M\", \"pid\": 1, \"tid\": ";
        buf += std::to_string(lane + 1);
        buf += ", \"name\": \"thread_name\", \"args\": {\"name\": \"";
        buf += lane == kSchedulerLane ? "scheduler" : "worker-" + std::to_string(lane);
        buf += "\"}}";
        out << buf;
    }
    for (const TraceEvent& ev : events) {
        char ph = 'i';
        switch (ev.kind) {
        case TraceEvent::Kind::Begin: ph = 'B'; break;
        case TraceEvent::Kind::End: ph = 'E'; break;
        case TraceEvent::Kind::Instant:
        case TraceEvent::Kind::Counter: ph = 'i'; break;
        }
        char ts[32];
        // Chrome expects microseconds; keep nanosecond precision in the
        // fraction.
        std::snprintf(ts, sizeof ts, "%lld.%03lld",
                      static_cast<long long>(ev.ts / 1000),
                      static_cast<long long>(ev.ts % 1000));
        buf.clear();
        buf += first ? "\n" : ",\n";
        first = false;
        buf += "{\"ph\": \"";
        buf += ph;
        buf += "\", \"pid\": 1, \"tid\": ";
        buf += std::to_string(ev.lane + 1);
        buf += ", \"ts\": ";
        buf += ts;
        if (ph == 'i') buf += ", \"s\": \"t\"";
        buf += ", \"cat\": \"";
        jsonEscapeTo(buf, ev.cat);
        buf += "\", \"name\": \"";
        jsonEscapeTo(buf, ev.name);
        buf += "\", \"args\": ";
        appendArgsJson(buf, rec, ev);
        buf += '}';
        out << buf;
    }
    out << "\n]}\n";
}

void writeJsonl(const Recorder& rec, std::ostream& out) {
    std::string buf;
    for (const TraceEvent& ev : rec.merged()) {
        const char* kind = "instant";
        switch (ev.kind) {
        case TraceEvent::Kind::Begin: kind = "begin"; break;
        case TraceEvent::Kind::End: kind = "end"; break;
        case TraceEvent::Kind::Instant: kind = "instant"; break;
        case TraceEvent::Kind::Counter: kind = "counter"; break;
        }
        buf.clear();
        buf += "{\"ts_ns\": ";
        buf += std::to_string(ev.ts);
        buf += ", \"kind\": \"";
        buf += kind;
        buf += "\", \"lane\": ";
        buf += std::to_string(ev.lane);
        buf += ", \"cat\": \"";
        jsonEscapeTo(buf, ev.cat);
        buf += "\", \"name\": \"";
        jsonEscapeTo(buf, ev.name);
        buf += "\", \"args\": ";
        appendArgsJson(buf, rec, ev);
        buf += "}\n";
        out << buf;
    }
}

std::string validateTrace(const std::vector<TraceEvent>& merged) {
    struct LaneState {
        int64_t lastTs = 0;
        std::vector<const TraceEvent*> stack;
        bool seen = false;
    };
    // Lanes are small integers (scheduler = -1, workers 0..N-1); index by
    // lane + 1.
    std::vector<LaneState> lanes;
    for (const TraceEvent& ev : merged) {
        if (ev.ts < 0) return "negative timestamp on '" + std::string(ev.name) + "'";
        const size_t li = static_cast<size_t>(ev.lane + 1);
        if (ev.lane < kSchedulerLane) return "lane below scheduler lane";
        if (li >= lanes.size()) lanes.resize(li + 1);
        LaneState& ls = lanes[li];
        if (ls.seen && ev.ts < ls.lastTs)
            return "timestamps not monotone on lane " + std::to_string(ev.lane);
        ls.lastTs = ev.ts;
        ls.seen = true;
        if (ev.kind == TraceEvent::Kind::Begin) {
            ls.stack.push_back(&ev);
        } else if (ev.kind == TraceEvent::Kind::End) {
            if (ls.stack.empty())
                return "End without Begin: '" + std::string(ev.name) + "' on lane " +
                       std::to_string(ev.lane);
            const TraceEvent* open = ls.stack.back();
            ls.stack.pop_back();
            if (std::string(open->name) != ev.name)
                return "mismatched span: opened '" + std::string(open->name) +
                       "', closed '" + ev.name + "' on lane " + std::to_string(ev.lane);
        }
    }
    for (size_t li = 0; li < lanes.size(); ++li)
        if (!lanes[li].stack.empty())
            return "span left open: '" + std::string(lanes[li].stack.back()->name) +
                   "' on lane " + std::to_string(static_cast<int>(li) - 1);
    return "";
}

} // namespace autosva::obs
