// The machine-readable run manifest (`--stats-json`) and the single
// source of truth for the engine-derived JSON field list shared with
// bench_common.hpp's --json emitter.
//
// The X-macros below pair each JSON key with the EngineStats member it
// reads. bench_common.hpp expands the same macros to fill and emit its
// JsonRow fields (whose member names equal the JSON keys), so the bench
// rows and the run manifest cannot drift: adding a field here without a
// matching JsonRow member is a compile error, and renaming either side
// breaks the build instead of silently forking the schema.
#pragma once

#include <ostream>
#include <string>

namespace autosva::sva {
struct VerificationReport;
}

/// EngineStats-derived integer fields: X(json_key, engine_stats_member).
#define AUTOSVA_ENGINE_JSON_U64_FIELDS(X)                                                    \
    X(sat_calls, satCalls)                                                                   \
    X(conflicts, conflicts)                                                                  \
    X(pdr_frames, pdrFramesOpened)                                                           \
    X(pdr_cubes, pdrCubesBlocked)                                                            \
    X(pdr_gen_drops, pdrGenDropAttempts)                                                     \
    X(pdr_retries, pdrRetryFallbacks)                                                        \
    X(pdr_seeds, pdrSeedCubesAdmitted)                                                       \
    X(legs_launched, portfolioLegsLaunched)                                                  \
    X(legs_cancelled, portfolioLegsCancelled)                                                \
    X(queries_returned, budgetQueriesReturned)                                               \
    X(refills_granted, budgetRefillsGranted)                                                 \
    X(pre_vars_elim, satPreVarsEliminated)                                                   \
    X(pre_subsumed, satPreClausesSubsumed)                                                   \
    X(pre_strengthened, satPreClausesStrengthened)                                           \
    X(pre_vivified, satPreClausesVivified)                                                   \
    X(pre_inprocess, satPreInprocessPasses)                                                  \
    X(hygiene_drops, hygieneClausesDropped)                                                  \
    X(live_clauses, solverLiveClauses)                                                       \
    X(learnt_clauses, solverLearntClauses)                                                   \
    X(peak_rss_kb, peakRssKb)

/// EngineStats-derived wall-clock fields (emitted with %.6f formatting).
#define AUTOSVA_ENGINE_JSON_DOUBLE_FIELDS(X)                                                 \
    X(phase_a_s, phaseASeconds)                                                              \
    X(phase_b_s, phaseBSeconds)

namespace autosva::obs {

/// Writes the full run manifest: `{"schema": "autosva-run-v1", "dut": ...,
/// "engine": {...}, "frontend": {...}, "properties": [...]}`. The engine
/// object carries the shared fields above plus the remaining EngineStats
/// counters; properties are the per-property rows in declaration order.
void writeStatsJson(std::ostream& out, const sva::VerificationReport& report);

/// writeStatsJson to `path`. Returns false (after printing a diagnostic to
/// stderr) when the file cannot be written.
bool writeStatsJsonFile(const std::string& path, const sva::VerificationReport& report);

} // namespace autosva::obs
