// Structured tracing layer: the span/event recorder the engine threads
// through every layer that already has counters (scheduler phases, the
// BMC -> induction -> PDR pipeline, cache lookups, portfolio legs, budget
// refills), plus the exporters that turn one run's events into a Chrome
// trace-event JSON (Perfetto / chrome://tracing), a JSONL event log, and
// the `autosva profile` summary (profile.hpp).
//
// Contract — verdict inertness: the recorder observes, never steers.
// Canonical reports are byte-identical with tracing on or off at any
// worker count; timestamps live only in the trace, never in canonical().
// Call sites guard on a null Recorder*, so a disabled recorder costs one
// pointer test per site and no allocation anywhere.
//
// Threading: each worker thread appends to its own buffer (acquired once
// per thread per recorder under the registry mutex, then lock-free), so
// the hot path takes no locks and writes no shared cache lines. merged()
// concatenates the buffers and stable-sorts by timestamp — call it only
// after the parallel phases joined (the scheduler's run() has returned).
//
// Track identity: events carry the "lane" of the emitting thread — the
// worker index of the enclosing parallelFor body (set via LaneScope), or
// kSchedulerLane for the orchestrating thread between phases. Lanes map
// 1:1 to Chrome trace tracks. parallelFor worker indices are unique among
// concurrently running threads and phases are sequential, so per-lane
// span nesting is well-formed even though each phase spawns fresh threads.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace autosva::obs {

/// Lane of the orchestrating (non-worker) thread; rendered as the
/// "scheduler" track. Worker lanes are 0..N-1 ("worker-N" tracks).
constexpr int16_t kSchedulerLane = -1;

/// One key/value annotation on an event. Keys must be string literals
/// (static storage duration) — the recorder stores the pointer only.
struct TraceArg {
    const char* key = nullptr;
    uint64_t val = 0;
};

/// One recorded event. `cat` and `name` must be string literals, like
/// TraceArg keys; `ob` is the obligation declaration index the event is
/// attributed to (-1 = run-level, not obligation-scoped).
struct TraceEvent {
    enum class Kind : uint8_t {
        Begin,   ///< Span open (paired with the next same-lane End).
        End,     ///< Span close; carries the span's summary args.
        Instant, ///< Point event (cache hit, leg cancelled, refill, ...).
        Counter, ///< Attribution-only numbers (no duration semantics).
    };
    Kind kind = Kind::Instant;
    uint8_t numArgs = 0;
    int16_t lane = kSchedulerLane;
    const char* cat = "";
    const char* name = "";
    int64_t ob = -1;
    int64_t ts = 0; ///< Nanoseconds since the recorder's epoch.
    std::array<TraceArg, 8> args{};
};

/// Establishes the worker lane for the current thread for the lifetime of
/// the scope. Every parallelFor body opens one with its worker index;
/// everything recorded outside any scope lands on kSchedulerLane.
class LaneScope {
public:
    explicit LaneScope(int lane);
    ~LaneScope();
    LaneScope(const LaneScope&) = delete;
    LaneScope& operator=(const LaneScope&) = delete;

    [[nodiscard]] static int16_t current();

private:
    int16_t prev_;
};

/// The per-run event recorder. Thread-safe; see the file comment for the
/// buffering scheme. One Recorder instance covers exactly one engine run.
class Recorder {
public:
    Recorder();
    Recorder(const Recorder&) = delete;
    Recorder& operator=(const Recorder&) = delete;

    /// Declaration-ordered obligation names, for rendering `ob` indices.
    /// Call single-threaded before the parallel phases start.
    void setObligationNames(std::vector<std::string> names);
    [[nodiscard]] const std::vector<std::string>& obligationNames() const {
        return obNames_;
    }
    /// Rendered name of an obligation index ("-" for run-level events).
    [[nodiscard]] std::string obName(int64_t ob) const;

    /// Nanoseconds since this recorder's construction (steady clock).
    [[nodiscard]] int64_t now() const;

    /// Appends one event to the calling thread's buffer (lock-free after
    /// the thread's first event). The lane is read from LaneScope.
    void record(TraceEvent::Kind kind, const char* cat, const char* name, int64_t ob,
                std::initializer_list<TraceArg> args = {});

    void instant(const char* cat, const char* name, int64_t ob,
                 std::initializer_list<TraceArg> args = {}) {
        record(TraceEvent::Kind::Instant, cat, name, ob, args);
    }
    /// Attribution numbers with no span of their own (e.g. the per-job
    /// query counts of one batched-BMC sweep).
    void counter(const char* cat, const char* name, int64_t ob,
                 std::initializer_list<TraceArg> args = {}) {
        record(TraceEvent::Kind::Counter, cat, name, ob, args);
    }

    /// All recorded events, concatenated across threads and stable-sorted
    /// by timestamp (ties keep buffer order). Only valid after every
    /// recording thread has joined.
    [[nodiscard]] std::vector<TraceEvent> merged() const;

    [[nodiscard]] size_t eventCount() const;

private:
    friend class Span; // End events carry pre-accumulated args (see Span::end).

    struct Buffer {
        std::vector<TraceEvent> events;
    };

    [[nodiscard]] Buffer& localBuffer();

    uint64_t id_; ///< Globally unique; guards thread-local slots against address reuse.
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex registry_;
    std::vector<std::unique_ptr<Buffer>> buffers_;
    std::vector<std::string> obNames_;
};

/// RAII span: records Begin at construction, End at destruction. The End
/// event carries every arg() added in between (summary values measured
/// during the span: queries, frames, cubes, ...). A null recorder makes
/// the whole object a no-op.
class Span {
public:
    Span(Recorder* rec, const char* cat, const char* name, int64_t ob = -1);
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Attaches a summary arg to the End event. Silently drops args past
    /// the TraceEvent capacity (8).
    void arg(const char* key, uint64_t val);

    /// Emits the End event now instead of at destruction — for spans whose
    /// extent does not coincide with a C++ scope (the scheduler's phases).
    /// Idempotent; arg() after end() is dropped.
    void end();

private:
    Recorder* rec_;
    const char* cat_;
    const char* name_;
    int64_t ob_;
    uint8_t numArgs_ = 0;
    std::array<TraceArg, 8> args_{};
};

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Chrome trace-event JSON (the object form, with thread_name metadata per
/// lane): loadable in Perfetto / chrome://tracing. One pid; tid = lane+1,
/// so the scheduler lane is tid 0 and worker w is tid w+1.
void writeChromeTrace(const Recorder& rec, std::ostream& out);

/// Line-delimited JSON: one event object per line, in merged order.
void writeJsonl(const Recorder& rec, std::ostream& out);

/// Structural check used by tests and asserted in CI: timestamps are
/// non-negative and non-decreasing per lane, and every lane's Begin/End
/// events nest properly (matching names, no close without an open, no
/// span left open). Returns "" when well-formed, else a diagnostic.
[[nodiscard]] std::string validateTrace(const std::vector<TraceEvent>& merged);

} // namespace autosva::obs
