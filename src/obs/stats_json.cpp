#include "obs/stats_json.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>

#include "sva/report.hpp"

namespace autosva::obs {

namespace {

void escapeTo(std::ostream& out, const std::string& s) {
    for (char c : s) {
        if (c == '"' || c == '\\') out << '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            out << ' ';
        else
            out << c;
    }
}

void emitDouble(std::ostream& out, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    out << buf;
}

const char* kindName(ir::Obligation::Kind kind) {
    switch (kind) {
    case ir::Obligation::Kind::SafetyBad: return "assert";
    case ir::Obligation::Kind::Constraint: return "assume";
    case ir::Obligation::Kind::Justice: return "justice";
    case ir::Obligation::Kind::Fairness: return "fairness";
    case ir::Obligation::Kind::Cover: return "cover";
    }
    return "unknown";
}

} // namespace

void writeStatsJson(std::ostream& out, const sva::VerificationReport& report) {
    const formal::EngineStats& es = report.engineStats;
    out << "{\"schema\": \"autosva-run-v1\", \"dut\": \"";
    escapeTo(out, report.dutName);
    out << "\", \"engine\": {";
    bool first = true;
#define X(json, member)                                                                      \
    out << (first ? "" : ", ") << "\"" #json "\": " << es.member;                            \
    first = false;
    AUTOSVA_ENGINE_JSON_U64_FIELDS(X)
#undef X
#define X(json, member)                                                                      \
    out << ", \"" #json "\": ";                                                              \
    emitDouble(out, es.member);
    AUTOSVA_ENGINE_JSON_DOUBLE_FIELDS(X)
#undef X
    out << ", \"total_s\": ";
    emitDouble(out, es.totalSeconds);
    out << ", \"propagations\": " << es.propagations
        << ", \"encoder_vars\": " << es.encoderVars
        << ", \"encoder_clauses\": " << es.encoderClauses
        << ", \"cones_materialized\": " << es.conesMaterialized
        << ", \"solver_reuses\": " << es.solverReuses
        << ", \"cache_lookups\": " << es.cacheLookups << ", \"cache_hits\": " << es.cacheHits
        << ", \"cache_stores\": " << es.cacheStores
        << ", \"cache_seeded_lemmas\": " << es.cacheSeededLemmas
        << ", \"live_waves\": " << es.liveWaves
        << ", \"live_wave_widest\": " << es.liveWaveWidest
        << ", \"deadline_degraded\": " << es.deadlineDegraded
        << ", \"run_stop_cause\": " << es.runStopCause << ", \"cache_degraded\": \"";
    escapeTo(out, es.cacheDegradedReason);
    out << "\"}";
    out << ", \"degraded\": " << (report.degraded() ? "true" : "false");
    const sva::FrontendStats& fe = report.frontend;
    out << ", \"frontend\": {\"sources_parsed\": " << fe.sourcesParsed
        << ", \"generated_reparses\": " << fe.generatedTextReparses
        << ", \"generated_ast_reused\": " << fe.generatedAstReused << "}";
    out << ", \"properties\": [";
    for (size_t i = 0; i < report.results.size(); ++i) {
        const formal::PropertyResult& r = report.results[i];
        out << (i ? ", " : "") << "{\"name\": \"";
        escapeTo(out, r.name);
        out << "\", \"kind\": \"" << kindName(r.kind) << "\", \"status\": \""
            << formal::statusName(r.status) << "\", \"depth\": " << r.depth
            << ", \"seconds\": ";
        emitDouble(out, r.seconds);
        out << ", \"cached\": " << (r.cached ? "true" : "false") << ", \"unknown_reason\": \""
            << formal::unknownReasonName(r.unknownReason) << "\"}";
    }
    out << "]}\n";
}

bool writeStatsJsonFile(const std::string& path, const sva::VerificationReport& report) {
    std::ofstream out(path);
    if (!out) {
        std::cerr << "error: cannot write --stats-json file '" << path << "'\n";
        return false;
    }
    writeStatsJson(out, report);
    if (!out.good()) {
        std::cerr << "error: short write to --stats-json file '" << path << "'\n";
        return false;
    }
    return true;
}

} // namespace autosva::obs
