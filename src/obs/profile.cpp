#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

#include "obs/trace.hpp"
#include "sva/report.hpp"

namespace autosva::obs {

namespace {

StageCost& stageOf(ObligationProfile& ob, const char* name) {
    for (auto& [stage, cost] : ob.stages)
        if (stage == name) return cost;
    ob.stages.emplace_back(name, StageCost{});
    return ob.stages.back().second;
}

/// Applies one event's attribution args (span End or Counter) to its
/// obligation. "queries" also feeds the run-level reconciliation total;
/// "nanos" carries time for events without a span of their own (the
/// per-job shares of one batched-BMC sweep).
void applyArgs(RunProfile& profile, ObligationProfile& ob, StageCost& stage,
               const TraceEvent& ev) {
    for (uint8_t i = 0; i < ev.numArgs; ++i) {
        const char* key = ev.args[i].key;
        const uint64_t val = ev.args[i].val;
        if (std::strcmp(key, "queries") == 0) {
            stage.queries += val;
            ob.queries += val;
            profile.attributedQueries += val;
        } else if (std::strcmp(key, "nanos") == 0) {
            const double s = static_cast<double>(val) / 1e9;
            stage.seconds += s;
            ob.seconds += s;
        } else if (std::strcmp(key, "frames") == 0) {
            ob.frames += val;
        } else if (std::strcmp(key, "cubes") == 0) {
            ob.cubes += val;
        } else if (std::strcmp(key, "drops") == 0) {
            ob.drops += val;
        } else if (std::strcmp(key, "retries") == 0) {
            ob.retries += val;
        } else if (std::strcmp(key, "seeds") == 0) {
            ob.seeds += val;
        }
    }
}

std::string fmtSeconds(double s) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3fs", s);
    return buf;
}

} // namespace

RunProfile buildProfile(const Recorder& rec) {
    RunProfile profile;
    const std::vector<TraceEvent> events = rec.merged();
    std::map<int64_t, ObligationProfile> byOb;

    struct OpenSpan {
        const TraceEvent* begin;
    };
    struct LaneState {
        std::vector<OpenSpan> stack;
        int64_t topLevelStart = 0;
        double busy = 0.0;
        uint64_t spans = 0;
    };
    std::map<int16_t, LaneState> laneStates;

    for (const TraceEvent& ev : events) {
        profile.wallSeconds = std::max(profile.wallSeconds, static_cast<double>(ev.ts) / 1e9);
        LaneState& lane = laneStates[ev.lane];
        switch (ev.kind) {
        case TraceEvent::Kind::Begin:
            if (lane.stack.empty()) lane.topLevelStart = ev.ts;
            lane.stack.push_back({&ev});
            break;
        case TraceEvent::Kind::End: {
            double dur = 0.0;
            if (!lane.stack.empty()) {
                dur = static_cast<double>(ev.ts - lane.stack.back().begin->ts) / 1e9;
                const int depth = static_cast<int>(lane.stack.size()) - 1;
                lane.stack.pop_back();
                ++lane.spans;
                if (lane.stack.empty())
                    lane.busy += static_cast<double>(ev.ts - lane.topLevelStart) / 1e9;
                if (std::strcmp(ev.cat, "phase") == 0) {
                    PhaseSlice slice;
                    slice.name = ev.name;
                    slice.depth = depth;
                    slice.startSeconds = static_cast<double>(ev.ts) / 1e9 - dur;
                    slice.seconds = dur;
                    profile.phases.push_back(std::move(slice));
                }
            }
            if (ev.ob >= 0) {
                ObligationProfile& ob = byOb[ev.ob];
                StageCost& stage = stageOf(ob, ev.name);
                stage.seconds += dur;
                ob.seconds += dur;
                applyArgs(profile, ob, stage, ev);
            }
            break;
        }
        case TraceEvent::Kind::Counter:
            if (ev.ob >= 0) {
                ObligationProfile& ob = byOb[ev.ob];
                applyArgs(profile, ob, stageOf(ob, ev.name), ev);
            }
            break;
        case TraceEvent::Kind::Instant:
            if (std::strcmp(ev.cat, "cache") == 0) {
                if (std::strcmp(ev.name, "hit") == 0) {
                    ++profile.cacheHits;
                    if (ev.ob >= 0) byOb[ev.ob].cacheHit = true;
                } else if (std::strcmp(ev.name, "miss") == 0 ||
                           std::strcmp(ev.name, "near-miss-seed") == 0) {
                    ++profile.cacheMisses;
                    if (std::strcmp(ev.name, "near-miss-seed") == 0)
                        ++profile.cacheSeedEvents;
                } else if (std::strcmp(ev.name, "store") == 0) {
                    ++profile.cacheStores;
                }
            }
            break;
        }
    }

    for (auto& [ob, op] : byOb) {
        op.index = ob;
        op.name = rec.obName(ob);
        profile.obligations.push_back(std::move(op));
    }
    // Slowest first; ties broken by queries then declaration index so the
    // listing is stable run to run.
    std::sort(profile.obligations.begin(), profile.obligations.end(),
              [](const ObligationProfile& a, const ObligationProfile& b) {
                  if (a.seconds != b.seconds) return a.seconds > b.seconds;
                  if (a.queries != b.queries) return a.queries > b.queries;
                  return a.index < b.index;
              });
    // Phase slices sorted by start; the stack pops them in close order.
    std::sort(profile.phases.begin(), profile.phases.end(),
              [](const PhaseSlice& a, const PhaseSlice& b) {
                  return a.startSeconds < b.startSeconds;
              });
    for (const auto& [lane, state] : laneStates) {
        if (lane < 0) continue;
        profile.lanes.push_back({lane, state.busy, state.spans});
    }
    return profile;
}

std::string renderProfile(const RunProfile& profile, const sva::VerificationReport& report,
                          size_t topK) {
    std::ostringstream out;
    out << "== run profile: " << report.dutName << " ==\n";
    out << "trace window " << fmtSeconds(profile.wallSeconds) << " | engine total "
        << fmtSeconds(report.engineStats.totalSeconds) << "\n";

    const uint64_t satCalls = report.engineStats.satCalls;
    out << "attributed queries " << profile.attributedQueries << " / engine sat-calls "
        << satCalls
        << (profile.attributedQueries == satCalls ? " (reconciled)\n" : " (MISMATCH)\n");

    if (!profile.phases.empty()) {
        out << "\nphase timeline:\n";
        for (const PhaseSlice& p : profile.phases) {
            out << "  ";
            for (int i = 0; i < p.depth; ++i) out << "  ";
            char line[160];
            std::snprintf(line, sizeof line, "%-14s @%8.3fs  %9.3fs\n", p.name.c_str(),
                          p.startSeconds, p.seconds);
            out << line;
        }
    }

    if (!profile.lanes.empty()) {
        out << "\nworker utilization (busy over trace window):\n";
        for (const LaneLoad& lane : profile.lanes) {
            const double pct =
                profile.wallSeconds > 0 ? 100.0 * lane.busySeconds / profile.wallSeconds : 0.0;
            char line[160];
            std::snprintf(line, sizeof line, "  worker-%-3d %9.3fs  %5.1f%%  (%llu spans)\n",
                          lane.lane, lane.busySeconds, pct,
                          static_cast<unsigned long long>(lane.spans));
            out << line;
        }
    }

    out << "\ncache: hits=" << profile.cacheHits << " misses=" << profile.cacheMisses
        << " near-miss-seeds=" << profile.cacheSeedEvents << " stores=" << profile.cacheStores
        << "\n";

    out << "\ntop " << std::min(topK, profile.obligations.size())
        << " properties by engine time:\n";
    size_t shown = 0;
    for (const ObligationProfile& ob : profile.obligations) {
        if (shown++ >= topK) break;
        const formal::PropertyResult* res = report.find(ob.name);
        char head[256];
        std::snprintf(head, sizeof head, "  %-44s %9.3fs  %8llu q  %s\n", ob.name.c_str(),
                      ob.seconds, static_cast<unsigned long long>(ob.queries),
                      res ? formal::statusName(res->status) : "?");
        out << head;
        for (const auto& [stage, cost] : ob.stages) {
            char line[256];
            std::snprintf(line, sizeof line, "      %-12s %9.3fs  %8llu q\n", stage.c_str(),
                          cost.seconds, static_cast<unsigned long long>(cost.queries));
            out << line;
        }
        if (ob.frames || ob.cubes || ob.drops || ob.retries || ob.seeds) {
            char line[256];
            std::snprintf(line, sizeof line,
                          "      pdr-counters frames=%llu cubes=%llu gen-drops=%llu "
                          "retries=%llu seeds=%llu\n",
                          static_cast<unsigned long long>(ob.frames),
                          static_cast<unsigned long long>(ob.cubes),
                          static_cast<unsigned long long>(ob.drops),
                          static_cast<unsigned long long>(ob.retries),
                          static_cast<unsigned long long>(ob.seeds));
            out << line;
        }
        if (ob.cacheHit) out << "      served from proof cache\n";
    }
    if (profile.obligations.empty())
        out << "  (no obligation-attributed events; all properties cached or skipped)\n";
    return out.str();
}

} // namespace autosva::obs
