// Minimal VCD (Value Change Dump) writer for simulator traces and formal
// counterexample replays.
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace autosva::sim {

/// Renders a recorded trace as VCD text. Signal names containing '.' are
/// split into hierarchical scopes.
[[nodiscard]] std::string traceToVcd(const ir::Design& design,
                                     const std::vector<TraceCycle>& trace,
                                     const std::string& topName = "top");

} // namespace autosva::sim
