#include "sim/vcd.hpp"

#include <algorithm>
#include <map>

namespace autosva::sim {

namespace {

std::string idCode(size_t index) {
    // Printable VCD identifier codes: base-94 over '!'..'~'.
    std::string code;
    do {
        code += static_cast<char>('!' + index % 94);
        index /= 94;
    } while (index > 0);
    return code;
}

std::string bitString(Value4 v, int width) {
    std::string bits;
    bits.reserve(static_cast<size_t>(width));
    for (int i = width - 1; i >= 0; --i) {
        if ((v.x >> i) & 1)
            bits += 'x';
        else
            bits += static_cast<char>('0' + ((v.val >> i) & 1));
    }
    return bits;
}

} // namespace

std::string traceToVcd(const ir::Design& design, const std::vector<TraceCycle>& trace,
                       const std::string& topName) {
    // Stable order for deterministic output.
    std::map<std::string, ir::NodeId> ordered(design.signals().begin(), design.signals().end());

    std::string out;
    out += "$date autosva $end\n$version autosva-cpp $end\n$timescale 1ns $end\n";
    out += "$scope module " + topName + " $end\n";
    std::map<std::string, std::pair<std::string, int>> codes; // name -> (code, width)
    size_t index = 0;
    for (const auto& [name, id] : ordered) {
        int width = design.node(id).width;
        std::string code = idCode(index++);
        codes[name] = {code, width};
        std::string safeName = name;
        std::replace(safeName.begin(), safeName.end(), ' ', '_');
        out += "$var wire " + std::to_string(width) + " " + code + " " + safeName + " $end\n";
    }
    out += "$upscope $end\n$enddefinitions $end\n";

    std::map<std::string, std::string> last;
    for (size_t t = 0; t < trace.size(); ++t) {
        out += "#" + std::to_string(t * 10) + "\n";
        for (const auto& [name, cw] : codes) {
            auto it = trace[t].signals.find(name);
            if (it == trace[t].signals.end()) continue;
            std::string bits = bitString(it->second, cw.second);
            auto lastIt = last.find(name);
            if (lastIt != last.end() && lastIt->second == bits) continue;
            last[name] = bits;
            if (cw.second == 1)
                out += bits + cw.first + "\n";
            else
                out += "b" + bits + " " + cw.first + "\n";
        }
    }
    return out;
}

} // namespace autosva::sim
