// Cycle-based 4-state simulator over the RTL IR.
//
// Each net carries a (value, xmask) pair; a set xmask bit means the bit is
// unknown (X). X propagation is pessimistic per-op. The simulator is used
// for: random smoke testing of designs, checking generated safety and
// X-propagation assertions during simulation (the paper's "property reuse"
// flow, §III-B), and replaying formal counterexample traces onto named
// signals for VCD dumping.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtlir/design.hpp"

namespace autosva::sim {

struct Value4 {
    uint64_t val = 0;
    uint64_t x = 0; ///< Set bit = unknown.

    [[nodiscard]] bool isFullyKnown() const { return x == 0; }
};

/// One cycle of a recorded waveform: values of all nodes of interest.
struct TraceCycle {
    std::unordered_map<std::string, Value4> signals;
};

/// A violation observed while simulating with assertion checking enabled.
struct SimViolation {
    std::string obligationName;
    ir::Obligation::Kind kind;
    uint64_t cycle = 0;
};

class Simulator {
public:
    enum class XMode {
        FourState, ///< Uninitialized state and undriven inputs start as X.
        TwoState,  ///< Everything unknown is forced to 0 (formal semantics).
    };

    explicit Simulator(const ir::Design& design, XMode mode = XMode::FourState);

    /// Resets simulation state: registers take their initial values (X/0 if
    /// symbolic), inputs become X/0, cycle counter restarts.
    void reset();

    // -- Stimulus ------------------------------------------------------------
    void setInput(ir::NodeId input, uint64_t value);
    /// By signal name; throws if unknown.
    void setInput(const std::string& name, uint64_t value);
    /// Forces a register's current state (used for CEX replay).
    void setRegState(ir::NodeId reg, uint64_t value);
    /// Drives every input with uniform random values.
    void randomizeInputs(std::mt19937_64& rng);

    // -- Evaluation ----------------------------------------------------------
    /// Evaluates combinational logic for the current cycle (idempotent).
    void evalComb();
    /// Evaluates, checks obligations, then advances registers one cycle.
    void step();

    [[nodiscard]] Value4 value(ir::NodeId id) const { return values_[id]; }
    [[nodiscard]] Value4 value(const std::string& signalName) const;
    [[nodiscard]] uint64_t cycle() const { return cycle_; }

    // -- Assertion checking ----------------------------------------------------
    /// Enables obligation checking during step(); X-prop obligations are
    /// checked only in FourState mode.
    void enableChecking(bool enable) { checking_ = enable; }
    [[nodiscard]] const std::vector<SimViolation>& violations() const { return violations_; }
    [[nodiscard]] const std::vector<std::string>& coveredObligations() const { return covered_; }

    // -- Waveform capture --------------------------------------------------------
    void enableTrace(bool enable) { tracing_ = enable; }
    [[nodiscard]] const std::vector<TraceCycle>& trace() const { return trace_; }

private:
    void evalNode(ir::NodeId id);
    void checkObligations();
    void captureTrace();
    [[nodiscard]] Value4 makeUnknown(int width) const;

    const ir::Design& design_;
    XMode mode_;
    std::vector<ir::NodeId> order_;
    std::vector<Value4> values_;    ///< Per-node current values.
    std::vector<Value4> regState_;  ///< Dense per-node register state (indexed by NodeId).
    std::vector<Value4> inputState_;
    uint64_t cycle_ = 0;
    bool checking_ = false;
    bool tracing_ = false;
    std::vector<SimViolation> violations_;
    std::vector<std::string> covered_;
    std::unordered_map<std::string, bool> coverSeen_;
    std::vector<TraceCycle> trace_;
};

} // namespace autosva::sim
