#include "sim/simulator.hpp"

#include <cassert>

#include "util/diagnostics.hpp"

namespace autosva::sim {

using ir::Design;
using ir::maskForWidth;
using ir::Node;
using ir::NodeId;
using ir::Op;

Simulator::Simulator(const Design& design, XMode mode)
    : design_(design), mode_(mode), order_(design.topoOrder()) {
    values_.resize(design.numNodes());
    regState_.resize(design.numNodes());
    inputState_.resize(design.numNodes());
    reset();
}

Value4 Simulator::makeUnknown(int width) const {
    Value4 v;
    if (mode_ == XMode::FourState) v.x = maskForWidth(width);
    return v;
}

void Simulator::reset() {
    cycle_ = 0;
    violations_.clear();
    covered_.clear();
    coverSeen_.clear();
    trace_.clear();
    for (NodeId r : design_.regs()) {
        const Node& n = design_.node(r);
        if (n.hasInit)
            regState_[r] = {n.initValue, 0};
        else
            regState_[r] = makeUnknown(n.width);
    }
    for (NodeId i : design_.inputs()) inputState_[i] = makeUnknown(design_.node(i).width);
}

void Simulator::setInput(NodeId input, uint64_t value) {
    const Node& n = design_.node(input);
    assert(n.op == Op::Input);
    inputState_[input] = {value & maskForWidth(n.width), 0};
}

void Simulator::setInput(const std::string& name, uint64_t value) {
    NodeId id = design_.findSignal(name);
    if (id == ir::kInvalidNode)
        throw util::FrontendError({}, "unknown signal '" + name + "'");
    // The named node may be a Buf that was converted to Input at finalize.
    if (design_.node(id).op != Op::Input)
        throw util::FrontendError({}, "signal '" + name + "' is not an input");
    setInput(id, value);
}

void Simulator::setRegState(NodeId reg, uint64_t value) {
    const Node& n = design_.node(reg);
    assert(n.op == Op::Reg);
    regState_[reg] = {value & maskForWidth(n.width), 0};
}

void Simulator::randomizeInputs(std::mt19937_64& rng) {
    for (NodeId i : design_.inputs()) setInput(i, rng());
}

Value4 Simulator::value(const std::string& signalName) const {
    NodeId id = design_.findSignal(signalName);
    if (id == ir::kInvalidNode)
        throw util::FrontendError({}, "unknown signal '" + signalName + "'");
    return values_[id];
}

void Simulator::evalNode(NodeId id) {
    const Node& n = design_.node(id);
    uint64_t mask = maskForWidth(n.width);
    auto in = [&](size_t i) { return values_[n.ops[i]]; };
    Value4 out;

    switch (n.op) {
    case Op::Const: out = {n.cval, 0}; break;
    case Op::Input: out = inputState_[id]; break;
    case Op::Reg: out = regState_[id]; break;
    case Op::Buf: out = in(0); break;
    case Op::Not: {
        Value4 a = in(0);
        out.x = a.x;
        out.val = ~a.val & mask & ~a.x;
        break;
    }
    case Op::And: {
        Value4 a = in(0), b = in(1);
        uint64_t known0 = (~a.val & ~a.x) | (~b.val & ~b.x);
        out.x = (a.x | b.x) & ~known0 & mask;
        out.val = a.val & b.val & ~out.x;
        break;
    }
    case Op::Or: {
        Value4 a = in(0), b = in(1);
        uint64_t known1 = (a.val & ~a.x) | (b.val & ~b.x);
        out.x = (a.x | b.x) & ~known1 & mask;
        out.val = ((a.val | b.val) | known1) & ~out.x & mask;
        break;
    }
    case Op::Xor: {
        Value4 a = in(0), b = in(1);
        out.x = (a.x | b.x) & mask;
        out.val = (a.val ^ b.val) & ~out.x & mask;
        break;
    }
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
    case Op::Mod: {
        Value4 a = in(0), b = in(1);
        if (a.x || b.x) {
            out = {0, mask};
            break;
        }
        switch (n.op) {
        case Op::Add: out.val = (a.val + b.val) & mask; break;
        case Op::Sub: out.val = (a.val - b.val) & mask; break;
        case Op::Mul: out.val = (a.val * b.val) & mask; break;
        case Op::Div: out.val = b.val ? (a.val / b.val) & mask : 0; break;
        case Op::Mod: out.val = b.val ? (a.val % b.val) & mask : 0; break;
        default: break;
        }
        break;
    }
    case Op::Eq:
    case Op::Ne:
    case Op::Ult:
    case Op::Ule: {
        Value4 a = in(0), b = in(1);
        if (a.x || b.x) {
            out = {0, 1};
            break;
        }
        bool r = false;
        switch (n.op) {
        case Op::Eq: r = a.val == b.val; break;
        case Op::Ne: r = a.val != b.val; break;
        case Op::Ult: r = a.val < b.val; break;
        case Op::Ule: r = a.val <= b.val; break;
        default: break;
        }
        out.val = r ? 1 : 0;
        break;
    }
    case Op::Shl:
    case Op::Shr: {
        Value4 a = in(0), b = in(1);
        if (b.x) {
            out = {0, mask};
            break;
        }
        uint64_t sh = b.val;
        if (sh >= 64) {
            out = {0, 0};
        } else if (n.op == Op::Shl) {
            out.val = (a.val << sh) & mask;
            out.x = (a.x << sh) & mask;
        } else {
            out.val = (a.val >> sh) & mask;
            out.x = (a.x >> sh) & mask;
        }
        out.val &= ~out.x;
        break;
    }
    case Op::Mux: {
        Value4 s = in(0), a = in(1), b = in(2);
        if (s.x) {
            out = {0, mask};
        } else {
            out = s.val ? a : b;
        }
        break;
    }
    case Op::Concat: {
        out = {0, 0};
        for (NodeId opId : n.ops) {
            const Node& part = design_.node(opId);
            Value4 pv = values_[opId];
            out.val = (out.val << part.width) | pv.val;
            out.x = (out.x << part.width) | pv.x;
        }
        out.val &= mask;
        out.x &= mask;
        out.val &= ~out.x;
        break;
    }
    case Op::Slice: {
        Value4 a = in(0);
        out.val = (a.val >> n.lo) & mask;
        out.x = (a.x >> n.lo) & mask;
        out.val &= ~out.x;
        break;
    }
    case Op::ZExt: {
        out = in(0);
        break;
    }
    case Op::RedAnd: {
        Value4 a = in(0);
        uint64_t w = maskForWidth(design_.node(n.ops[0]).width);
        uint64_t known0 = ~a.val & ~a.x & w;
        if (known0)
            out = {0, 0};
        else if (a.x)
            out = {0, 1};
        else
            out = {1, 0};
        break;
    }
    case Op::RedOr: {
        Value4 a = in(0);
        uint64_t known1 = a.val & ~a.x;
        if (known1)
            out = {1, 0};
        else if (a.x)
            out = {0, 1};
        else
            out = {0, 0};
        break;
    }
    case Op::RedXor: {
        Value4 a = in(0);
        if (a.x)
            out = {0, 1};
        else
            out = {static_cast<uint64_t>(__builtin_parityll(a.val)), 0};
        break;
    }
    case Op::IsUnknown: {
        Value4 a = in(0);
        out = {a.x != 0 ? uint64_t{1} : uint64_t{0}, 0};
        break;
    }
    }

    if (mode_ == XMode::TwoState) {
        out.val &= ~out.x;
        out.x = 0;
    }
    values_[id] = out;
}

void Simulator::evalComb() {
    for (NodeId id : order_) evalNode(id);
}

void Simulator::checkObligations() {
    for (const auto& ob : design_.obligations()) {
        if (ob.xprop && mode_ != XMode::FourState) continue;
        Value4 v = values_[ob.net];
        switch (ob.kind) {
        case ir::Obligation::Kind::SafetyBad:
            // Violated when definitely 1; an X here in xprop mode also flags.
            if ((v.val & 1) != 0 || (ob.xprop && v.x))
                violations_.push_back({ob.name, ob.kind, cycle_});
            break;
        case ir::Obligation::Kind::Constraint:
            if (v.x == 0 && (v.val & 1) == 0)
                violations_.push_back({ob.name, ob.kind, cycle_});
            break;
        case ir::Obligation::Kind::Cover:
            if ((v.val & 1) != 0 && !coverSeen_[ob.name]) {
                coverSeen_[ob.name] = true;
                covered_.push_back(ob.name);
            }
            break;
        case ir::Obligation::Kind::Justice:
        case ir::Obligation::Kind::Fairness:
            break; // Liveness is not decidable in finite simulation.
        }
    }
}

void Simulator::captureTrace() {
    TraceCycle tc;
    for (const auto& [name, id] : design_.signals()) tc.signals.emplace(name, values_[id]);
    trace_.push_back(std::move(tc));
}

void Simulator::step() {
    evalComb();
    if (checking_) checkObligations();
    if (tracing_) captureTrace();
    // Commit register next-state.
    std::vector<std::pair<NodeId, Value4>> updates;
    updates.reserve(design_.regs().size());
    for (NodeId r : design_.regs()) {
        const Node& n = design_.node(r);
        updates.emplace_back(r, values_[n.next]);
    }
    for (auto& [r, v] : updates) regState_[r] = v;
    ++cycle_;
}

} // namespace autosva::sim
