#include "core/propgen.hpp"

#include <new>
#include <set>

#include "robust/faultinject.hpp"
#include "verilog/parser.hpp"
#include "verilog/printer.hpp"

namespace autosva::core {

namespace vl = autosva::verilog;

namespace {

using vl::ExprPtr;

// ---------------------------------------------------------------------------
// AST construction helpers
// ---------------------------------------------------------------------------

/// Builds a vector of move-only AST pointers (initializer lists copy).
template <typename T, typename... Rest>
std::vector<T> vecOf(T first, Rest... rest) {
    std::vector<T> v;
    v.push_back(std::move(first));
    (v.push_back(std::move(rest)), ...);
    return v;
}

ExprPtr id(const std::string& name) { return vl::makeIdent(name); }
ExprPtr num(uint64_t v) { return vl::makeNumber(v, 0); }

/// Unbased-unsized literal `'0`.
ExprPtr fillZero() {
    ExprPtr e = vl::makeNumber(0, 0);
    e->isUnbasedUnsized = true;
    return e;
}

ExprPtr paren(ExprPtr e) {
    e->parenthesized = true;
    return e;
}

ExprPtr land(ExprPtr a, ExprPtr b) {
    return vl::makeBinary(vl::BinaryOp::LogicAnd, std::move(a), std::move(b));
}
ExprPtr lor(ExprPtr a, ExprPtr b) {
    return vl::makeBinary(vl::BinaryOp::LogicOr, std::move(a), std::move(b));
}
ExprPtr lnot(ExprPtr a) { return vl::makeUnary(vl::UnaryOp::LogicNot, std::move(a)); }
ExprPtr eq(ExprPtr a, ExprPtr b) {
    return vl::makeBinary(vl::BinaryOp::Eq, std::move(a), std::move(b));
}
ExprPtr gt(ExprPtr a, ExprPtr b) {
    return vl::makeBinary(vl::BinaryOp::Gt, std::move(a), std::move(b));
}
ExprPtr ge(ExprPtr a, ExprPtr b) {
    return vl::makeBinary(vl::BinaryOp::Ge, std::move(a), std::move(b));
}
ExprPtr le(ExprPtr a, ExprPtr b) {
    return vl::makeBinary(vl::BinaryOp::Le, std::move(a), std::move(b));
}
ExprPtr add(ExprPtr a, ExprPtr b) {
    return vl::makeBinary(vl::BinaryOp::Add, std::move(a), std::move(b));
}
ExprPtr sub(ExprPtr a, ExprPtr b) {
    return vl::makeBinary(vl::BinaryOp::Sub, std::move(a), std::move(b));
}

/// Parses a designer-written fragment (annotation expression, width text,
/// parameter default) into a typed expression whose printed projection is
/// the verbatim input text, and whose nodes carry the annotation's source
/// location for provenance.
ExprPtr parseGen(const std::string& text, const util::SourceLoc& loc) {
    try {
        ExprPtr e = vl::Parser::parseExpression(text, loc.file.empty() ? "generated" : loc.file);
        e->loc = loc;
        return e;
    } catch (const util::FrontendError&) {
        throw util::FrontendError(loc, "expression '" + text +
                                           "' in annotation does not parse as Verilog");
    }
}

vl::StmtPtr nbAssign(const std::string& lhs, ExprPtr rhs) {
    auto s = std::make_unique<vl::Stmt>(vl::Stmt::Kind::Assign);
    s->lhs = id(lhs);
    s->rhs = std::move(rhs);
    s->nonBlocking = true;
    return s;
}

vl::StmtPtr block(std::vector<vl::StmtPtr> stmts) {
    auto s = std::make_unique<vl::Stmt>(vl::Stmt::Kind::Block);
    s->stmts = std::move(stmts);
    return s;
}

vl::StmtPtr ifStmt(ExprPtr cond, vl::StmtPtr thenStmt, vl::StmtPtr elseStmt = nullptr) {
    auto s = std::make_unique<vl::Stmt>(vl::Stmt::Kind::If);
    s->cond = std::move(cond);
    s->thenStmt = std::move(thenStmt);
    s->elseStmt = std::move(elseStmt);
    return s;
}

vl::PropExprPtr pBool(ExprPtr e) {
    auto p = std::make_unique<vl::PropExpr>(vl::PropExpr::Kind::Boolean);
    p->loc = e->loc;
    p->boolean = std::move(e);
    return p;
}

vl::PropExprPtr pImpl(ExprPtr ante, vl::PropExprPtr rhs, bool overlapping = true) {
    auto p = std::make_unique<vl::PropExpr>(vl::PropExpr::Kind::Implication);
    p->loc = ante->loc;
    p->boolean = std::move(ante);
    p->rhsProp = std::move(rhs);
    p->overlapping = overlapping;
    return p;
}

vl::PropExprPtr pEventually(ExprPtr e) {
    auto p = std::make_unique<vl::PropExpr>(vl::PropExpr::Kind::Eventually);
    p->rhsProp = pBool(std::move(e));
    return p;
}

constexpr const char* kRule = "------------------------------------------------------------------";

// ---------------------------------------------------------------------------
// Generator context
// ---------------------------------------------------------------------------

struct Ctx {
    const DutInterface& dut;
    const PropGenOptions& opts;
    PropGenResult& result;
    vl::Module& mod;
    std::set<std::string> emittedWires;

    [[nodiscard]] ExprPtr resetGuard() const {
        return dut.resetActiveLow ? lnot(id(dut.resetName)) : id(dut.resetName);
    }

    void blank() {
        vl::ModuleItem item(vl::ModuleItem::Kind::Comment);
        item.comment = std::make_unique<vl::CommentItem>();
        mod.items.push_back(std::move(item));
    }

    void comment(std::string text) {
        vl::ModuleItem item(vl::ModuleItem::Kind::Comment);
        item.comment = std::make_unique<vl::CommentItem>();
        item.comment->text = std::move(text);
        mod.items.push_back(std::move(item));
    }

    /// Declares `kind [widthMsb:0] name` with an optional init expression.
    void net(vl::NetKind kind, const std::string& name, const std::string& widthMsb,
             ExprPtr init, const util::SourceLoc& loc) {
        vl::ModuleItem item(vl::ModuleItem::Kind::Net);
        item.net = std::make_unique<vl::NetDecl>();
        item.net->kind = kind;
        item.net->name = name;
        if (!widthMsb.empty())
            item.net->packed = vl::Range{parseGen(widthMsb, loc), num(0)};
        item.net->init = std::move(init);
        item.net->loc = loc;
        mod.items.push_back(std::move(item));
    }

    /// `always_ff @(posedge clk or negedge rst_n) begin <body> end`.
    void alwaysFF(std::vector<vl::StmtPtr> body, const util::SourceLoc& loc) {
        vl::ModuleItem item(vl::ModuleItem::Kind::Always);
        item.always = std::make_unique<vl::AlwaysBlock>();
        item.always->kind = vl::AlwaysBlock::Kind::FF;
        item.always->clockSignal = dut.clockName;
        item.always->clockPosedge = true;
        item.always->asyncResetSignal = dut.resetName;
        item.always->asyncResetNegedge = dut.resetActiveLow;
        item.always->body = block(std::move(body));
        item.always->loc = loc;
        mod.items.push_back(std::move(item));
    }

    /// Emits one property with the right directive, recording stats and the
    /// annotation provenance that flows into verification reports.
    void prop(const std::string& label, bool asserted, bool cover, bool liveness, bool xprop,
              sva::Attr attr, const std::string& transaction, const util::SourceLoc& loc,
              vl::PropExprPtr body) {
        bool finalAssert = asserted || (opts.assertInputs && !cover);
        const char* prefix = cover ? "co" : (xprop ? "xp" : (finalAssert ? "as" : "am"));
        std::string fullLabel = std::string(prefix) + "__" + label;

        vl::ModuleItem item(vl::ModuleItem::Kind::Assertion);
        item.assertion = std::make_unique<vl::AssertionItem>();
        item.assertion->kind = cover ? vl::AssertionKind::Cover
                                     : (finalAssert ? vl::AssertionKind::Assert
                                                    : vl::AssertionKind::Assume);
        item.assertion->label = fullLabel;
        item.assertion->prop = std::move(body);
        item.assertion->loc = loc;
        mod.items.push_back(std::move(item));

        GeneratedProperty gp;
        gp.label = std::move(fullLabel);
        gp.sourceAttr = attr;
        gp.transaction = transaction;
        gp.isAssert = finalAssert && !cover;
        gp.isCover = cover;
        gp.isLiveness = liveness;
        gp.isXprop = xprop;
        gp.sourceLoc = loc;
        result.properties.push_back(std::move(gp));
    }
};

/// Name of the generated wire for an attribute (suffix `_m` avoids clashing
/// with same-named DUT ports for implicit definitions).
std::string attrWire(const InterfaceDesc& iface, Attr attr) {
    return iface.name + "_" + sva::attrName(attr) + "_m";
}

/// Provenance of a property derived from `attr` on `iface`: the attribute
/// definition's annotation line when known, else the transaction relation.
util::SourceLoc locFor(const InterfaceDesc& iface, Attr attr, const Transaction& t) {
    const AttrDef* def = iface.get(attr);
    if (def && def->loc.valid()) return def->loc;
    return t.loc;
}

void emitAttrWires(Ctx& ctx, const InterfaceDesc& iface, const Transaction& t) {
    for (const auto& [attr, def] : iface.attrs) {
        std::string wire = attrWire(iface, attr);
        if (!ctx.emittedWires.insert(wire).second) continue; // Shared interface.
        util::SourceLoc loc = locFor(iface, attr, t);
        ctx.net(vl::NetKind::Wire, wire, def.widthMsb, paren(parseGen(def.rhs, loc)), loc);
    }
}

ExprPtr hskExpr(const InterfaceDesc& iface) {
    ExprPtr val = id(attrWire(iface, Attr::Val));
    if (iface.has(Attr::Ack)) return land(std::move(val), id(attrWire(iface, Attr::Ack)));
    return val;
}

void emitTransaction(Ctx& ctx, const Transaction& t) {
    const std::string& T = t.name;
    const bool incoming = t.incoming;

    ctx.blank();
    ctx.comment(kRule);
    ctx.comment("Transaction " + T + ": " + t.req.name + (incoming ? " -in> " : " -out> ") +
                t.resp.name);
    ctx.comment(kRule);

    emitAttrWires(ctx, t.req, t);
    emitAttrWires(ctx, t.resp, t);

    // Handshake wires.
    ctx.net(vl::NetKind::Wire, T + "_req_hsk", "", hskExpr(t.req), t.loc);
    ctx.net(vl::NetKind::Wire, T + "_res_hsk", "", hskExpr(t.resp), t.loc);

    // Transaction-tracking condition: symbolic transaction ID filtering when
    // transid is defined (one assertion reasons over every ID).
    ExprPtr setExpr = id(T + "_req_hsk");
    ExprPtr respExpr = id(T + "_res_hsk");
    if (t.tracksTransid()) {
        const AttrDef* reqId = t.req.get(Attr::Transid);
        util::SourceLoc idLoc = locFor(t.req, Attr::Transid, t);
        ctx.comment("Symbolic (rigid) transaction ID: tracks any single ID.");
        ctx.net(vl::NetKind::Logic, "symb_" + T + "_transid", reqId->widthMsb, nullptr, idLoc);
        ctx.prop(T + "_symb_transid_stable", /*asserted=*/false, false, false, false,
                 Attr::Transid, T, idLoc,
                 pBool(vl::makeCall("$stable", vecOf(id("symb_" + T + "_transid")))));
        setExpr = land(std::move(setExpr),
                       paren(eq(id(attrWire(t.req, Attr::Transid)), id("symb_" + T + "_transid"))));
        respExpr = land(std::move(respExpr), paren(eq(id(attrWire(t.resp, Attr::Transid)),
                                                      id("symb_" + T + "_transid"))));
    }
    ctx.net(vl::NetKind::Wire, T + "_set", "", std::move(setExpr), t.loc);
    ctx.net(vl::NetKind::Wire, T + "_response", "", std::move(respExpr), t.loc);

    // Outstanding-transaction counter.
    ctx.net(vl::NetKind::Reg, T + "_sampled", "OUTSTANDING_W-1", nullptr, t.loc);
    {
        std::vector<vl::StmtPtr> body;
        body.push_back(ifStmt(
            ctx.resetGuard(), block(vecOf(nbAssign(T + "_sampled", fillZero()))),
            ifStmt(lor(id(T + "_set"), id(T + "_response")),
                   block(vecOf(nbAssign(T + "_sampled", sub(add(id(T + "_sampled"), id(T + "_set")),
                                                            id(T + "_response"))))))));
        ctx.alwaysFF(std::move(body), t.loc);
    }

    // ---- Properties (Table II) ----

    // val*: liveness (every request eventually answered) + no orphan
    // responses. Asserted when the DUT is the responder (incoming).
    util::SourceLoc valLoc = locFor(t.req, Attr::Val, t);
    ctx.prop(T + "_eventual_response", incoming, false, true, false, Attr::Val, T, valLoc,
             pImpl(id(T + "_set"), pEventually(id(T + "_response"))));
    ctx.prop(T + "_had_a_request", incoming, false, false, false, Attr::Val, T, valLoc,
             pImpl(id(T + "_response"),
                   pBool(lor(id(T + "_set"), gt(id(T + "_sampled"), num(0))))));

    // Environment bound on outstanding transactions (sizes the counter; the
    // requester must respect it).
    ctx.prop(T + "_max_outstanding", !incoming, false, false, false, Attr::Val, T, valLoc,
             pImpl(ge(id(T + "_sampled"), id("MAX_OUTSTANDING")), pBool(lnot(id(T + "_set")))));

    // ack*: eventual handshake-or-drop on each interface that has an ack.
    // A request may only be dropped if no stable signal is defined.
    for (const auto* iface : {&t.req, &t.resp}) {
        if (!iface->has(Attr::Ack)) continue;
        bool ackDriverIsDut = (iface == &t.req) == incoming;
        std::string val = attrWire(*iface, Attr::Val);
        std::string ack = attrWire(*iface, Attr::Ack);
        ExprPtr target = iface->has(Attr::Stable) ? id(ack) : lor(lnot(id(val)), id(ack));
        ctx.prop(T + "_" + iface->name + "_hsk_or_drop", ackDriverIsDut, false, true, false,
                 Attr::Ack, T, locFor(*iface, Attr::Ack, t),
                 pImpl(id(val), pEventually(std::move(target))));
    }

    // stable: payload held while valid and not acknowledged. Assumed for
    // environment-driven interfaces, asserted for DUT-driven ones.
    for (const auto* iface : {&t.req, &t.resp}) {
        if (!iface->has(Attr::Stable)) continue;
        bool valDriverIsDut = (iface == &t.req) ? !incoming : incoming;
        ExprPtr guard = id(attrWire(*iface, Attr::Val));
        if (iface->has(Attr::Ack))
            guard = land(std::move(guard), lnot(id(attrWire(*iface, Attr::Ack))));
        ctx.prop(T + "_" + iface->name + "_stability", valDriverIsDut, false, false, false,
                 Attr::Stable, T, locFor(*iface, Attr::Stable, t),
                 pImpl(std::move(guard),
                       pBool(vl::makeCall("$stable", vecOf(id(attrWire(*iface, Attr::Stable))))),
                       /*overlapping=*/false));
    }

    // active: asserted whenever the transaction is ongoing.
    for (const auto* iface : {&t.req, &t.resp}) {
        if (!iface->has(Attr::Active)) continue;
        ctx.prop(T + "_" + iface->name + "_active", true, false, false, false, Attr::Active, T,
                 locFor(*iface, Attr::Active, t),
                 pImpl(gt(id(T + "_sampled"), num(0)),
                       pBool(id(attrWire(*iface, Attr::Active)))));
    }

    // transid_unique: no two outstanding transactions share an ID. With the
    // symbolic filter, this is exactly "no new set while one is in flight".
    if (t.req.has(Attr::TransidUnique) ||
        (t.tracksTransid() && t.resp.has(Attr::TransidUnique))) {
        const InterfaceDesc& src = t.req.has(Attr::TransidUnique) ? t.req : t.resp;
        ctx.prop(T + "_transid_unique", !incoming, false, false, false, Attr::TransidUnique, T,
                 locFor(src, Attr::TransidUnique, t),
                 pImpl(id(T + "_set"), pBool(eq(id(T + "_sampled"), num(0)))));
    }

    // data: response payload equals the request payload sampled at issue.
    if (t.tracksData()) {
        const AttrDef* reqData = t.req.get(Attr::Data);
        util::SourceLoc dataLoc = locFor(t.req, Attr::Data, t);
        std::string reqD = attrWire(t.req, Attr::Data);
        std::string respD = attrWire(t.resp, Attr::Data);
        ctx.net(vl::NetKind::Reg, T + "_data_sampled", reqData->widthMsb, nullptr, dataLoc);
        {
            std::vector<vl::StmtPtr> body;
            body.push_back(
                ifStmt(ctx.resetGuard(), block(vecOf(nbAssign(T + "_data_sampled", fillZero()))),
                       ifStmt(id(T + "_set"),
                              block(vecOf(nbAssign(T + "_data_sampled", id(reqD)))))));
            ctx.alwaysFF(std::move(body), dataLoc);
        }
        // Guarded to at most one outstanding transaction: with several in
        // flight and no ID tracking, the sample register holds the newest
        // request while the response may serve an older one. With transid
        // tracking (symbolic filtering + uniqueness) the guard is trivially
        // true and the check is exact.
        ctx.prop(T + "_data_integrity", incoming, false, false, false, Attr::Data, T, dataLoc,
                 pImpl(land(id(T + "_response"), le(id(T + "_sampled"), num(1))),
                       pBool(eq(id(respD),
                                paren(vl::makeTernary(eq(id(T + "_sampled"), num(0)), id(reqD),
                                                      id(T + "_data_sampled")))))));
    }

    // Covers: the request path is exercisable.
    if (ctx.opts.includeCovers) {
        ctx.prop(T + "_request_happens", false, true, false, false, Attr::Val, T, valLoc,
                 pBool(gt(id(T + "_sampled"), num(0))));
        ctx.prop(T + "_response_happens", false, true, false, false, Attr::Val, T, valLoc,
                 pBool(id(T + "_response")));
    }

    // X-propagation: when val is high, no other attribute may be X
    // (simulation-only; formal tools are 2-state).
    if (ctx.opts.includeXprop) {
        for (const auto* iface : {&t.req, &t.resp}) {
            std::vector<ExprPtr> sigs;
            for (const auto& [attr, def] : iface->attrs) {
                if (attr == Attr::Val) continue;
                sigs.push_back(id(attrWire(*iface, attr)));
            }
            if (sigs.empty()) continue;
            ctx.prop(T + "_" + iface->name + "_xprop", true, false, false, true, Attr::Val, T,
                     locFor(*iface, Attr::Val, t),
                     pImpl(id(attrWire(*iface, Attr::Val)),
                           pBool(lnot(vl::makeCall("$isunknown",
                                                   vecOf(vl::makeConcat(std::move(sigs))))))));
        }
    }
}

} // namespace

int PropGenResult::countAsserts() const {
    int n = 0;
    for (const auto& p : properties)
        if (p.isAssert && !p.isXprop) ++n;
    return n;
}
int PropGenResult::countAssumes() const {
    int n = 0;
    for (const auto& p : properties)
        if (!p.isAssert && !p.isCover) ++n;
    return n;
}
int PropGenResult::countCovers() const {
    int n = 0;
    for (const auto& p : properties)
        if (p.isCover) ++n;
    return n;
}
int PropGenResult::countLiveness() const {
    int n = 0;
    for (const auto& p : properties)
        if (p.isLiveness) ++n;
    return n;
}
int PropGenResult::countXprop() const {
    int n = 0;
    for (const auto& p : properties)
        if (p.isXprop) ++n;
    return n;
}

PropGenResult generateProperties(const DutInterface& dut,
                                 const std::vector<Transaction>& transactions,
                                 const PropGenOptions& opts) {
    // Fault site: property generation builds the whole SVA module tree in
    // one pass; model the allocation failing before any output exists.
    if (robust::faultFire(robust::FaultSite::PropgenAlloc)) throw std::bad_alloc();
    PropGenResult result;
    result.propertyModuleName = dut.moduleName + "_prop";

    auto file = std::make_shared<vl::SourceFile>();
    auto modPtr = std::make_unique<vl::Module>();
    vl::Module& mod = *modPtr;
    util::SourceLoc modLoc{result.propertyModuleName + ".sv", 0, 0};

    mod.name = result.propertyModuleName;
    mod.loc = modLoc;
    mod.headerComments = {"Formal testbench for module '" + dut.moduleName + "'.",
                          "Auto-generated by autosva-cpp; regenerate rather than editing."};

    // Parameters: MAX_OUTSTANDING + a copy of the DUT parameters so width
    // expressions keep working.
    {
        vl::ParamDecl p;
        p.name = "MAX_OUTSTANDING";
        p.value = num(static_cast<uint64_t>(opts.maxOutstanding));
        p.loc = modLoc;
        mod.params.push_back(std::move(p));
    }
    for (const auto& dp : dut.params) {
        vl::ParamDecl p;
        p.name = dp.name;
        p.value = parseGen(dp.defaultText, modLoc);
        p.loc = modLoc;
        mod.params.push_back(std::move(p));
    }

    // Ports: every DUT port, as an input.
    for (const auto& port : dut.ports) {
        vl::Port p;
        p.dir = vl::PortDir::Input;
        p.netKind = vl::NetKind::Wire;
        p.name = port.name;
        if (!port.widthMsb.empty()) p.packed = vl::Range{parseGen(port.widthMsb, modLoc), num(0)};
        p.loc = modLoc;
        mod.ports.push_back(std::move(p));
    }

    Ctx ctx{dut, opts, result, mod, {}};

    ctx.blank();
    {
        vl::ModuleItem item(vl::ModuleItem::Kind::Param);
        item.param = std::make_unique<vl::ParamDecl>();
        item.param->isLocal = true;
        item.param->name = "OUTSTANDING_W";
        item.param->value =
            add(vl::makeCall("$clog2", vecOf(id("MAX_OUTSTANDING"))), num(1));
        item.param->loc = modLoc;
        mod.items.push_back(std::move(item));
    }
    ctx.blank();

    // `default clocking` / `default disable` print after the localparam.
    mod.defaultClock = dut.clockName;
    mod.defaultDisable = ctx.resetGuard();
    mod.svaDefaultsPos = static_cast<int>(mod.items.size());

    for (const auto& t : transactions) emitTransaction(ctx, t);

    ctx.blank();

    vl::BindDirective bind;
    bind.targetModule = dut.moduleName;
    bind.boundModule = result.propertyModuleName;
    bind.instName = dut.moduleName + "_prop_i";
    bind.wildcardPorts = true;
    bind.headerComments = {"Bind file for module '" + dut.moduleName + "'."};
    bind.loc = modLoc;

    file->modules.push_back(std::move(modPtr));
    file->binds.push_back(std::move(bind));

    // The printed artifacts are projections of the AST — the printer is the
    // single renderer.
    result.propertyFile = vl::printModule(*file->modules.front());
    result.bindFile = vl::printBind(file->binds.front());
    result.ast = std::move(file);
    return result;
}

} // namespace autosva::core
