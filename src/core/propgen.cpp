#include "core/propgen.hpp"

#include <set>

namespace autosva::core {

namespace {

/// Incremental text builder for the property module.
class Emitter {
public:
    void line(const std::string& text = "") {
        out_ += text;
        out_ += '\n';
    }
    [[nodiscard]] std::string str() const { return out_; }

private:
    std::string out_;
};

struct Ctx {
    const DutInterface& dut;
    const PropGenOptions& opts;
    PropGenResult& result;
    Emitter& em;
    std::set<std::string> emittedWires;

    [[nodiscard]] std::string resetGuard() const {
        return dut.resetActiveLow ? "!" + dut.resetName : dut.resetName;
    }
    [[nodiscard]] std::string ffHeader() const {
        // always_ff @(posedge clk or negedge rst_n) / (... or posedge rst)
        return "always_ff @(posedge " + dut.clockName + " or " +
               (dut.resetActiveLow ? "negedge " : "posedge ") + dut.resetName + ") begin";
    }

    /// Emits one property with the right directive, recording stats.
    void prop(const std::string& label, bool asserted, bool cover, bool liveness, bool xprop,
              sva::Attr attr, const std::string& transaction, const std::string& body) {
        bool finalAssert = asserted || (opts.assertInputs && !cover);
        std::string prefix = cover ? "co" : (xprop ? "xp" : (finalAssert ? "as" : "am"));
        std::string directive = cover ? "cover" : (finalAssert ? "assert" : "assume");
        std::string fullLabel = prefix + "__" + label;
        em.line("  " + fullLabel + ": " + directive + " property (" + body + ");");
        GeneratedProperty gp;
        gp.label = fullLabel;
        gp.sourceAttr = attr;
        gp.transaction = transaction;
        gp.isAssert = finalAssert && !cover;
        gp.isCover = cover;
        gp.isLiveness = liveness;
        gp.isXprop = xprop;
        result.properties.push_back(std::move(gp));
    }
};

/// Name of the generated wire for an attribute (suffix `_m` avoids clashing
/// with same-named DUT ports for implicit definitions).
std::string attrWire(const InterfaceDesc& iface, Attr attr) {
    return iface.name + "_" + sva::attrName(attr) + "_m";
}

void emitAttrWires(Ctx& ctx, const InterfaceDesc& iface) {
    for (const auto& [attr, def] : iface.attrs) {
        std::string wire = attrWire(iface, attr);
        if (!ctx.emittedWires.insert(wire).second) continue; // Shared interface.
        std::string width = def.widthMsb.empty() ? "" : "[" + def.widthMsb + ":0] ";
        ctx.em.line("  wire " + width + wire + " = (" + def.rhs + ");");
    }
}

std::string hskExpr(const InterfaceDesc& iface) {
    std::string val = attrWire(iface, Attr::Val);
    if (iface.has(Attr::Ack)) return val + " && " + attrWire(iface, Attr::Ack);
    return val;
}

void emitTransaction(Ctx& ctx, const Transaction& t) {
    Emitter& em = ctx.em;
    const std::string& T = t.name;
    const bool incoming = t.incoming;

    em.line();
    em.line("  // ------------------------------------------------------------------");
    em.line("  // Transaction " + T + ": " + t.req.name + (incoming ? " -in> " : " -out> ") +
            t.resp.name);
    em.line("  // ------------------------------------------------------------------");

    emitAttrWires(ctx, t.req);
    emitAttrWires(ctx, t.resp);

    // Handshake wires.
    em.line("  wire " + T + "_req_hsk = " + hskExpr(t.req) + ";");
    em.line("  wire " + T + "_res_hsk = " + hskExpr(t.resp) + ";");

    // Transaction-tracking condition: symbolic transaction ID filtering when
    // transid is defined (one assertion reasons over every ID).
    std::string setExpr = T + "_req_hsk";
    std::string respExpr = T + "_res_hsk";
    if (t.tracksTransid()) {
        const AttrDef* reqId = t.req.get(Attr::Transid);
        std::string width = reqId->widthMsb.empty() ? "" : "[" + reqId->widthMsb + ":0] ";
        em.line("  // Symbolic (rigid) transaction ID: tracks any single ID.");
        em.line("  logic " + width + "symb_" + T + "_transid;");
        ctx.prop(T + "_symb_transid_stable", /*asserted=*/false, false, false, false,
                 Attr::Transid, T, "$stable(symb_" + T + "_transid)");
        setExpr += " && (" + attrWire(t.req, Attr::Transid) + " == symb_" + T + "_transid)";
        respExpr += " && (" + attrWire(t.resp, Attr::Transid) + " == symb_" + T + "_transid)";
    }
    em.line("  wire " + T + "_set = " + setExpr + ";");
    em.line("  wire " + T + "_response = " + respExpr + ";");

    // Outstanding-transaction counter.
    em.line("  reg [OUTSTANDING_W-1:0] " + T + "_sampled;");
    em.line("  " + ctx.ffHeader());
    em.line("    if (" + ctx.resetGuard() + ") begin");
    em.line("      " + T + "_sampled <= '0;");
    em.line("    end else if (" + T + "_set || " + T + "_response) begin");
    em.line("      " + T + "_sampled <= " + T + "_sampled + " + T + "_set - " + T +
            "_response;");
    em.line("    end");
    em.line("  end");

    // ---- Properties (Table II) ----

    // val*: liveness (every request eventually answered) + no orphan
    // responses. Asserted when the DUT is the responder (incoming).
    ctx.prop(T + "_eventual_response", incoming, false, true, false, Attr::Val, T,
             T + "_set |-> s_eventually (" + T + "_response)");
    ctx.prop(T + "_had_a_request", incoming, false, false, false, Attr::Val, T,
             T + "_response |-> " + T + "_set || " + T + "_sampled > 0");

    // Environment bound on outstanding transactions (sizes the counter; the
    // requester must respect it).
    ctx.prop(T + "_max_outstanding", !incoming, false, false, false, Attr::Val, T,
             T + "_sampled >= MAX_OUTSTANDING |-> !" + T + "_set");

    // ack*: eventual handshake-or-drop on each interface that has an ack.
    // A request may only be dropped if no stable signal is defined.
    for (const auto* iface : {&t.req, &t.resp}) {
        if (!iface->has(Attr::Ack)) continue;
        bool ackDriverIsDut = (iface == &t.req) == incoming;
        std::string val = attrWire(*iface, Attr::Val);
        std::string ack = attrWire(*iface, Attr::Ack);
        std::string target =
            iface->has(Attr::Stable) ? ack : "!" + val + " || " + ack;
        ctx.prop(T + "_" + iface->name + "_hsk_or_drop", ackDriverIsDut, false, true, false,
                 Attr::Ack, T, val + " |-> s_eventually (" + target + ")");
    }

    // stable: payload held while valid and not acknowledged. Assumed for
    // environment-driven interfaces, asserted for DUT-driven ones.
    for (const auto* iface : {&t.req, &t.resp}) {
        if (!iface->has(Attr::Stable)) continue;
        bool valDriverIsDut = (iface == &t.req) ? !incoming : incoming;
        std::string val = attrWire(*iface, Attr::Val);
        std::string guard = val;
        if (iface->has(Attr::Ack)) guard += " && !" + attrWire(*iface, Attr::Ack);
        ctx.prop(T + "_" + iface->name + "_stability", valDriverIsDut, false, false, false,
                 Attr::Stable, T,
                 guard + " |=> $stable(" + attrWire(*iface, Attr::Stable) + ")");
    }

    // active: asserted whenever the transaction is ongoing.
    for (const auto* iface : {&t.req, &t.resp}) {
        if (!iface->has(Attr::Active)) continue;
        ctx.prop(T + "_" + iface->name + "_active", true, false, false, false, Attr::Active, T,
                 T + "_sampled > 0 |-> " + attrWire(*iface, Attr::Active));
    }

    // transid_unique: no two outstanding transactions share an ID. With the
    // symbolic filter, this is exactly "no new set while one is in flight".
    if (t.req.has(Attr::TransidUnique) ||
        (t.tracksTransid() && t.resp.has(Attr::TransidUnique))) {
        ctx.prop(T + "_transid_unique", !incoming, false, false, false, Attr::TransidUnique, T,
                 T + "_set |-> " + T + "_sampled == 0");
    }

    // data: response payload equals the request payload sampled at issue.
    if (t.tracksData()) {
        const AttrDef* reqData = t.req.get(Attr::Data);
        std::string width = reqData->widthMsb.empty() ? "" : "[" + reqData->widthMsb + ":0] ";
        std::string reqD = attrWire(t.req, Attr::Data);
        std::string respD = attrWire(t.resp, Attr::Data);
        em.line("  reg " + width + T + "_data_sampled;");
        em.line("  " + ctx.ffHeader());
        em.line("    if (" + ctx.resetGuard() + ") begin");
        em.line("      " + T + "_data_sampled <= '0;");
        em.line("    end else if (" + T + "_set) begin");
        em.line("      " + T + "_data_sampled <= " + reqD + ";");
        em.line("    end");
        em.line("  end");
        // Guarded to at most one outstanding transaction: with several in
        // flight and no ID tracking, the sample register holds the newest
        // request while the response may serve an older one. With transid
        // tracking (symbolic filtering + uniqueness) the guard is trivially
        // true and the check is exact.
        ctx.prop(T + "_data_integrity", incoming, false, false, false, Attr::Data, T,
                 T + "_response && " + T + "_sampled <= 1 |-> " + respD + " == (" + T +
                     "_sampled == 0 ? " + reqD + " : " + T + "_data_sampled)");
    }

    // Covers: the request path is exercisable.
    if (ctx.opts.includeCovers) {
        ctx.prop(T + "_request_happens", false, true, false, false, Attr::Val, T,
                 T + "_sampled > 0");
        ctx.prop(T + "_response_happens", false, true, false, false, Attr::Val, T,
                 T + "_response");
    }

    // X-propagation: when val is high, no other attribute may be X
    // (simulation-only; formal tools are 2-state).
    if (ctx.opts.includeXprop) {
        for (const auto* iface : {&t.req, &t.resp}) {
            std::vector<std::string> sigs;
            for (const auto& [attr, def] : iface->attrs) {
                if (attr == Attr::Val) continue;
                sigs.push_back(attrWire(*iface, attr));
            }
            if (sigs.empty()) continue;
            std::string concat = "{";
            for (size_t i = 0; i < sigs.size(); ++i)
                concat += (i ? ", " : "") + sigs[i];
            concat += "}";
            ctx.prop(T + "_" + iface->name + "_xprop", true, false, false, true, Attr::Val, T,
                     attrWire(*iface, Attr::Val) + " |-> !$isunknown(" + concat + ")");
        }
    }
}

} // namespace

int PropGenResult::countAsserts() const {
    int n = 0;
    for (const auto& p : properties)
        if (p.isAssert && !p.isXprop) ++n;
    return n;
}
int PropGenResult::countAssumes() const {
    int n = 0;
    for (const auto& p : properties)
        if (!p.isAssert && !p.isCover) ++n;
    return n;
}
int PropGenResult::countCovers() const {
    int n = 0;
    for (const auto& p : properties)
        if (p.isCover) ++n;
    return n;
}
int PropGenResult::countLiveness() const {
    int n = 0;
    for (const auto& p : properties)
        if (p.isLiveness) ++n;
    return n;
}
int PropGenResult::countXprop() const {
    int n = 0;
    for (const auto& p : properties)
        if (p.isXprop) ++n;
    return n;
}

PropGenResult generateProperties(const DutInterface& dut,
                                 const std::vector<Transaction>& transactions,
                                 const PropGenOptions& opts) {
    PropGenResult result;
    result.propertyModuleName = dut.moduleName + "_prop";

    Emitter em;
    Ctx ctx{dut, opts, result, em, {}};

    em.line("// Formal testbench for module '" + dut.moduleName + "'.");
    em.line("// Auto-generated by autosva-cpp; regenerate rather than editing.");
    em.line("module " + result.propertyModuleName);

    // Parameters: MAX_OUTSTANDING + a copy of the DUT parameters so width
    // expressions keep working.
    em.line("#(");
    std::string paramLines = "  parameter MAX_OUTSTANDING = " +
                             std::to_string(opts.maxOutstanding);
    for (const auto& p : dut.params)
        paramLines += ",\n  parameter " + p.name + " = " + p.defaultText;
    em.line(paramLines);
    em.line(") (");

    // Ports: every DUT port, as an input.
    std::string portLines;
    for (size_t i = 0; i < dut.ports.size(); ++i) {
        const auto& port = dut.ports[i];
        std::string width = port.widthMsb.empty() ? "" : "[" + port.widthMsb + ":0] ";
        portLines += "  input wire " + width + port.name;
        if (i + 1 < dut.ports.size()) portLines += ",\n";
    }
    em.line(portLines);
    em.line(");");
    em.line();
    em.line("  localparam OUTSTANDING_W = $clog2(MAX_OUTSTANDING) + 1;");
    em.line();
    em.line("  default clocking cb @(posedge " + dut.clockName + "); endclocking");
    em.line("  default disable iff (" + ctx.resetGuard() + ");");

    for (const auto& t : transactions) emitTransaction(ctx, t);

    em.line();
    em.line("endmodule");
    result.propertyFile = em.str();

    result.bindFile = "// Bind file for module '" + dut.moduleName + "'.\n" +
                      "bind " + dut.moduleName + " " + result.propertyModuleName + " " +
                      dut.moduleName + "_prop_i (.*);\n";
    return result;
}

} // namespace autosva::core
