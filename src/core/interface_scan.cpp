#include "core/interface_scan.hpp"

#include <array>

namespace autosva::core {

using util::FrontendError;

namespace {

bool isClockName(const std::string& name) {
    static const std::array<const char*, 5> names = {"clk", "clk_i", "clock", "clock_i", "clk_in"};
    for (const char* n : names)
        if (name == n) return true;
    return false;
}

/// Returns active-low flag if the name is a recognized reset; nullopt else.
std::optional<bool> resetPolarity(const std::string& name) {
    static const std::array<const char*, 6> low = {"rst_ni", "rst_n", "rstn", "reset_n",
                                                   "resetn", "rst_l"};
    static const std::array<const char*, 4> high = {"rst", "rst_i", "reset", "reset_i"};
    for (const char* n : low)
        if (name == n) return true;
    for (const char* n : high)
        if (name == n) return false;
    return std::nullopt;
}

} // namespace

DutInterface scanInterface(const verilog::SourceFile& file, const ScanOptions& opts,
                           util::DiagEngine& diags) {
    const verilog::Module* mod = nullptr;
    if (opts.moduleName.empty()) {
        if (file.modules.empty()) throw FrontendError({}, "no module found in source");
        mod = file.modules.front().get();
    } else {
        mod = file.findModule(opts.moduleName);
        if (!mod) throw FrontendError({}, "module '" + opts.moduleName + "' not found");
    }

    DutInterface dut;
    dut.moduleName = mod->name;

    for (const auto& p : mod->params) {
        ParamInfo info;
        info.name = p.name;
        info.defaultText = verilog::exprToString(*p.value);
        dut.params.push_back(std::move(info));
    }
    // Evaluate parameter defaults iteratively (params may reference earlier
    // ones).
    for (size_t i = 0; i < mod->params.size(); ++i) {
        int w = evalWidth(dut.params[i].defaultText, dut); // w = value + 1
        if (w > 0) {
            dut.params[i].value = static_cast<uint64_t>(w) - 1;
            dut.params[i].known = true;
        }
    }

    for (const auto& port : mod->ports) {
        PortInfo info;
        info.name = port.name;
        info.isInput = port.dir == verilog::PortDir::Input;
        if (port.packed) info.widthMsb = verilog::exprToString(*port.packed->msb);
        info.widthBits = evalWidth(info.widthMsb, dut);
        dut.ports.push_back(std::move(info));
    }

    // Clock detection.
    dut.clockName = opts.clockName;
    if (dut.clockName.empty()) {
        for (const auto& p : dut.ports)
            if (p.isInput && isClockName(p.name)) {
                dut.clockName = p.name;
                break;
            }
    }
    if (dut.clockName.empty())
        throw FrontendError(mod->loc, "could not identify a clock port in module '" + mod->name +
                                          "' (use ScanOptions::clockName)");

    // Reset detection.
    dut.resetName = opts.resetName;
    if (!dut.resetName.empty()) {
        auto pol = resetPolarity(dut.resetName);
        dut.resetActiveLow = pol.value_or(dut.resetName.ends_with("_n") ||
                                          dut.resetName.ends_with("_ni"));
    } else {
        for (const auto& p : dut.ports) {
            if (!p.isInput) continue;
            auto pol = resetPolarity(p.name);
            if (pol) {
                dut.resetName = p.name;
                dut.resetActiveLow = *pol;
                break;
            }
        }
    }
    if (dut.resetName.empty())
        throw FrontendError(mod->loc, "could not identify a reset port in module '" + mod->name +
                                          "' (use ScanOptions::resetName)");

    if (dut.ports.size() < 2)
        diags.warning(mod->loc, "module '" + mod->name + "' has very few ports");
    return dut;
}

} // namespace autosva::core
