#include "core/autosva.hpp"

#include "core/interface_scan.hpp"
#include "core/toolgen.hpp"
#include "rtlir/elaborate.hpp"
#include "util/stopwatch.hpp"
#include "verilog/parser.hpp"

namespace autosva::core {

int FormalTestbench::numAssertions() const {
    int n = 0;
    for (const auto& p : properties)
        if (p.isAssert && !p.isXprop) ++n;
    return n;
}
int FormalTestbench::numAssumptions() const {
    int n = 0;
    for (const auto& p : properties)
        if (!p.isAssert && !p.isCover) ++n;
    return n;
}
int FormalTestbench::numCovers() const {
    int n = 0;
    for (const auto& p : properties)
        if (p.isCover) ++n;
    return n;
}
int FormalTestbench::numLiveness() const {
    int n = 0;
    for (const auto& p : properties)
        if (p.isLiveness) ++n;
    return n;
}

FormalTestbench generateFT(const std::string& rtlSource, const AutoSvaOptions& opts,
                           util::DiagEngine& diags) {
    util::Stopwatch sw;
    const std::string sourceName = opts.sourcePath.empty() ? "dut.sv" : opts.sourcePath;

    // Step 1: parse the RTL and scan the interface declaration section.
    verilog::SourceFile file = verilog::Parser::parseSource(rtlSource, sourceName);
    ScanOptions scanOpts;
    scanOpts.moduleName = opts.dutName;
    scanOpts.clockName = opts.clockName;
    scanOpts.resetName = opts.resetName;
    DutInterface dut = scanInterface(file, scanOpts, diags);

    // Step 2: parse annotations and build transaction objects.
    AnnotationSet annotations = parseAnnotations(rtlSource, sourceName, diags);
    buildTransactions(annotations.transactions, dut, diags);

    // Steps 3+4: signal + property generation — a typed verilog:: AST whose
    // printed artifacts are projections (verilog::Printer is the renderer).
    PropGenOptions genOpts;
    genOpts.assertInputs = opts.assertInputs;
    genOpts.includeXprop = opts.includeXprop;
    genOpts.includeCovers = opts.includeCovers;
    genOpts.maxOutstanding = opts.maxOutstanding;
    PropGenResult gen = generateProperties(dut, annotations.transactions, genOpts);

    // Step 5: FV tool setup.
    ToolGenInput toolIn;
    toolIn.dutName = dut.moduleName;
    toolIn.propertyModuleName = gen.propertyModuleName;
    toolIn.clockName = dut.clockName;
    toolIn.resetName = dut.resetName;
    toolIn.resetActiveLow = dut.resetActiveLow;
    toolIn.rtlFiles = {dut.moduleName + ".sv"};
    toolIn.propertyFileName = gen.propertyModuleName + ".sv";
    toolIn.bindFileName = dut.moduleName + "_bind.svh";

    FormalTestbench ft;
    ft.dutName = dut.moduleName;
    ft.propertyModuleName = gen.propertyModuleName;
    ft.propertyAst = gen.ast;
    ft.propertyFile = std::move(gen.propertyFile);
    ft.bindFile = std::move(gen.bindFile);
    ft.jasperTcl = generateJasperTcl(toolIn);
    ft.sbyFile = generateSbyFile(toolIn);
    ft.properties = std::move(gen.properties);
    ft.annotationLines = annotations.annotationLines;
    ft.generationSeconds = sw.seconds();
    return ft;
}

namespace {

/// Diagnostic buffer name for rtlSources[i].
std::string sourceNameOf(const VerifyOptions& opts, size_t i) {
    if (i < opts.sourcePaths.size() && !opts.sourcePaths[i].empty()) return opts.sourcePaths[i];
    return i == 0 ? "dut.sv" : "source" + std::to_string(i);
}

/// The shared elaboration path of verify()/elaborateWithFT: parses the RTL
/// sources once (with their real names) and hands the generated property
/// module to the elaborator as AST — generated text is never re-lexed.
/// `stats`, when given, records the parse activity.
std::unique_ptr<ir::Design> elaborateWithFTStats(const std::vector<std::string>& rtlSources,
                                                 const FormalTestbench& ft,
                                                 const VerifyOptions& opts,
                                                 util::DiagEngine& diags, bool tieReset,
                                                 sva::FrontendStats* stats) {
    // Parse the RTL sources (the DUT and any submodules / extras). This is
    // the only lex+parse work on the verification path.
    std::vector<verilog::SourceFile> parsed;
    parsed.reserve(rtlSources.size() + opts.extraSources.size() +
                   2 * (1 + opts.submoduleFts.size()));
    for (size_t i = 0; i < rtlSources.size(); ++i)
        parsed.push_back(verilog::Parser::parseSource(rtlSources[i], sourceNameOf(opts, i)));
    for (size_t i = 0; i < opts.extraSources.size(); ++i)
        parsed.push_back(verilog::Parser::parseSource(
            opts.extraSources[i], "extra" + std::to_string(i) + ".sv"));
    if (stats) stats->sourcesParsed += rtlSources.size() + opts.extraSources.size();

    std::vector<const verilog::SourceFile*> files;
    files.reserve(parsed.size() + 1 + opts.submoduleFts.size());
    // `parsed` is fully populated above; pointers into it are stable now.
    for (const auto& f : parsed) files.push_back(&f);

    // The generated testbenches: AST straight to the elaborator. Re-parsing
    // the printed text only happens for hand-built FormalTestbench objects
    // that never went through generateFT.
    std::vector<verilog::SourceFile> reparsed;
    reparsed.reserve(2 * (1 + opts.submoduleFts.size()));
    auto addTestbench = [&](const FormalTestbench& tb) {
        if (tb.propertyAst) {
            files.push_back(tb.propertyAst.get());
            if (stats) ++stats->generatedAstReused;
            return;
        }
        reparsed.push_back(
            verilog::Parser::parseSource(tb.propertyFile, tb.propertyModuleName + ".sv"));
        reparsed.push_back(
            verilog::Parser::parseSource(tb.bindFile, tb.dutName + "_bind.svh"));
        if (stats) stats->generatedTextReparses += 2;
    };
    addTestbench(ft);
    for (const FormalTestbench* sub : opts.submoduleFts) addTestbench(*sub);
    for (const auto& f : reparsed) files.push_back(&f);

    // Scan the DUT interface for clock/reset names on the already-parsed
    // AST (no second parse of the DUT source).
    ScanOptions scanOpts;
    scanOpts.moduleName = ft.dutName;
    DutInterface dut = scanInterface(parsed.at(0), scanOpts, diags);

    ir::ElabOptions elabOpts;
    elabOpts.paramOverrides = opts.paramOverrides;
    if (tieReset)
        elabOpts.tieOffs[dut.resetName] = dut.resetActiveLow ? 1u : 0u;

    return ir::elaborateFiles(files, ft.dutName, diags, elabOpts);
}

} // namespace

std::unique_ptr<ir::Design> elaborateWithFT(const std::vector<std::string>& rtlSources,
                                            const FormalTestbench& ft, const VerifyOptions& opts,
                                            util::DiagEngine& diags, bool tieReset) {
    return elaborateWithFTStats(rtlSources, ft, opts, diags, tieReset, nullptr);
}

sva::VerificationReport verify(const std::vector<std::string>& rtlSources,
                               const FormalTestbench& ft, const VerifyOptions& opts,
                               util::DiagEngine& diags) {
    sva::FrontendStats frontend;
    auto design = elaborateWithFTStats(rtlSources, ft, opts, diags, /*tieReset=*/true, &frontend);
    formal::Engine engine(*design, opts.engine);
    sva::VerificationReport report;
    report.dutName = ft.dutName;
    report.results = engine.checkAll();
    report.engineStats = engine.stats();
    report.frontend = frontend;
    return report;
}

sva::VerificationReport generateAndVerify(const std::string& rtlSource,
                                          const AutoSvaOptions& genOpts,
                                          const VerifyOptions& verifyOpts,
                                          util::DiagEngine& diags) {
    FormalTestbench ft = generateFT(rtlSource, genOpts, diags);
    VerifyOptions vopts = verifyOpts;
    if (vopts.engine.jobs <= 1 && genOpts.jobs > 1) vopts.engine.jobs = genOpts.jobs;
    if (vopts.engine.cacheDir.empty() && !genOpts.cacheDir.empty())
        vopts.engine.cacheDir = genOpts.cacheDir;
    if (vopts.sourcePaths.empty() && !genOpts.sourcePath.empty())
        vopts.sourcePaths = {genOpts.sourcePath};
    return verify({rtlSource}, ft, vopts, diags);
}

} // namespace autosva::core
