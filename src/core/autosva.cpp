#include "core/autosva.hpp"

#include "core/interface_scan.hpp"
#include "core/toolgen.hpp"
#include "rtlir/elaborate.hpp"
#include "util/stopwatch.hpp"
#include "verilog/parser.hpp"

namespace autosva::core {

int FormalTestbench::numAssertions() const {
    int n = 0;
    for (const auto& p : properties)
        if (p.isAssert && !p.isXprop) ++n;
    return n;
}
int FormalTestbench::numAssumptions() const {
    int n = 0;
    for (const auto& p : properties)
        if (!p.isAssert && !p.isCover) ++n;
    return n;
}
int FormalTestbench::numCovers() const {
    int n = 0;
    for (const auto& p : properties)
        if (p.isCover) ++n;
    return n;
}
int FormalTestbench::numLiveness() const {
    int n = 0;
    for (const auto& p : properties)
        if (p.isLiveness) ++n;
    return n;
}

FormalTestbench generateFT(const std::string& rtlSource, const AutoSvaOptions& opts,
                           util::DiagEngine& diags) {
    util::Stopwatch sw;

    // Step 1: parse the RTL and scan the interface declaration section.
    verilog::SourceFile file = verilog::Parser::parseSource(rtlSource, "dut.sv");
    ScanOptions scanOpts;
    scanOpts.moduleName = opts.dutName;
    scanOpts.clockName = opts.clockName;
    scanOpts.resetName = opts.resetName;
    DutInterface dut = scanInterface(file, scanOpts, diags);

    // Step 2: parse annotations and build transaction objects.
    AnnotationSet annotations = parseAnnotations(rtlSource, "dut.sv", diags);
    buildTransactions(annotations.transactions, dut, diags);

    // Steps 3+4: signal + property generation.
    PropGenOptions genOpts;
    genOpts.assertInputs = opts.assertInputs;
    genOpts.includeXprop = opts.includeXprop;
    genOpts.includeCovers = opts.includeCovers;
    genOpts.maxOutstanding = opts.maxOutstanding;
    PropGenResult gen = generateProperties(dut, annotations.transactions, genOpts);

    // Step 5: FV tool setup.
    ToolGenInput toolIn;
    toolIn.dutName = dut.moduleName;
    toolIn.propertyModuleName = gen.propertyModuleName;
    toolIn.clockName = dut.clockName;
    toolIn.resetName = dut.resetName;
    toolIn.resetActiveLow = dut.resetActiveLow;
    toolIn.rtlFiles = {dut.moduleName + ".sv"};
    toolIn.propertyFileName = gen.propertyModuleName + ".sv";
    toolIn.bindFileName = dut.moduleName + "_bind.svh";

    FormalTestbench ft;
    ft.dutName = dut.moduleName;
    ft.propertyModuleName = gen.propertyModuleName;
    ft.propertyFile = std::move(gen.propertyFile);
    ft.bindFile = std::move(gen.bindFile);
    ft.jasperTcl = generateJasperTcl(toolIn);
    ft.sbyFile = generateSbyFile(toolIn);
    ft.properties = std::move(gen.properties);
    ft.annotationLines = annotations.annotationLines;
    ft.generationSeconds = sw.seconds();
    return ft;
}

std::unique_ptr<ir::Design> elaborateWithFT(const std::vector<std::string>& rtlSources,
                                            const FormalTestbench& ft, const VerifyOptions& opts,
                                            util::DiagEngine& diags, bool tieReset) {
    std::vector<std::string> sources = rtlSources;
    for (const auto& extra : opts.extraSources) sources.push_back(extra);
    sources.push_back(ft.propertyFile);
    sources.push_back(ft.bindFile);
    for (const FormalTestbench* sub : opts.submoduleFts) {
        sources.push_back(sub->propertyFile);
        sources.push_back(sub->bindFile);
    }

    // Re-scan the DUT interface for clock/reset names (cheap).
    verilog::SourceFile dutFile = verilog::Parser::parseSource(rtlSources.at(0), "dut.sv");
    ScanOptions scanOpts;
    scanOpts.moduleName = ft.dutName;
    DutInterface dut = scanInterface(dutFile, scanOpts, diags);

    ir::ElabOptions elabOpts;
    elabOpts.paramOverrides = opts.paramOverrides;
    if (tieReset)
        elabOpts.tieOffs[dut.resetName] = dut.resetActiveLow ? 1u : 0u;

    return ir::elaborateSources(sources, ft.dutName, diags, elabOpts);
}

sva::VerificationReport verify(const std::vector<std::string>& rtlSources,
                               const FormalTestbench& ft, const VerifyOptions& opts,
                               util::DiagEngine& diags) {
    auto design = elaborateWithFT(rtlSources, ft, opts, diags, /*tieReset=*/true);
    formal::Engine engine(*design, opts.engine);
    sva::VerificationReport report;
    report.dutName = ft.dutName;
    report.results = engine.checkAll();
    report.engineStats = engine.stats();
    return report;
}

sva::VerificationReport generateAndVerify(const std::string& rtlSource,
                                          const AutoSvaOptions& genOpts,
                                          const VerifyOptions& verifyOpts,
                                          util::DiagEngine& diags) {
    FormalTestbench ft = generateFT(rtlSource, genOpts, diags);
    VerifyOptions vopts = verifyOpts;
    if (vopts.engine.jobs <= 1 && genOpts.jobs > 1) vopts.engine.jobs = genOpts.jobs;
    if (vopts.engine.cacheDir.empty() && !genOpts.cacheDir.empty())
        vopts.engine.cacheDir = genOpts.cacheDir;
    return verify({rtlSource}, ft, vopts, diags);
}

} // namespace autosva::core
