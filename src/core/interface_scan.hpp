// Extraction of the DUT interface (ports, parameters, clock/reset) from the
// module declaration section — AutoSVA's parser step (1).
#pragma once

#include <string>

#include "core/transaction.hpp"
#include "util/diagnostics.hpp"
#include "verilog/ast.hpp"

namespace autosva::core {

struct ScanOptions {
    std::string moduleName; ///< Empty: first module in the file.
    std::string clockName;  ///< Empty: auto-detect (clk, clk_i, clock, ...).
    std::string resetName;  ///< Empty: auto-detect (rst_ni, rst_n, reset, ...).
};

/// Scans the DUT module header. Throws util::FrontendError if the module or
/// a clock/reset cannot be identified.
[[nodiscard]] DutInterface scanInterface(const verilog::SourceFile& file,
                                         const ScanOptions& opts, util::DiagEngine& diags);

} // namespace autosva::core
