#include "core/language.hpp"

#include "util/strings.hpp"
#include "verilog/parser.hpp"

namespace autosva::core {

using util::FrontendError;
using util::SourceLoc;

namespace {

struct RawLine {
    std::string text;
    int lineNo; // 1-based in the RTL buffer.
};

/// Extracts annotation lines: bodies of /*AUTOSVA ... */ regions plus
/// `//AUTOSVA <line>` one-liners.
std::vector<RawLine> extractAnnotationLines(const std::string& rtlText) {
    std::vector<RawLine> out;
    auto lines = util::splitLines(rtlText);
    bool inRegion = false;
    for (size_t i = 0; i < lines.size(); ++i) {
        std::string_view line = util::trim(lines[i]);
        int no = static_cast<int>(i) + 1;
        if (!inRegion) {
            if (line.rfind("/*AUTOSVA", 0) == 0) {
                std::string_view rest = util::trim(line.substr(9));
                if (rest.size() >= 2 && rest.substr(rest.size() - 2) == "*/") {
                    rest = util::trim(rest.substr(0, rest.size() - 2));
                    if (!rest.empty()) out.push_back({std::string(rest), no});
                } else {
                    inRegion = true;
                    if (!rest.empty()) out.push_back({std::string(rest), no});
                }
            } else if (line.rfind("//AUTOSVA", 0) == 0) {
                std::string_view rest = util::trim(line.substr(9));
                if (!rest.empty()) out.push_back({std::string(rest), no});
            }
        } else {
            if (line.find("*/") != std::string_view::npos) {
                std::string_view body = util::trim(line.substr(0, line.find("*/")));
                if (!body.empty()) out.push_back({std::string(body), no});
                inRegion = false;
            } else {
                if (!line.empty()) out.push_back({std::string(line), no});
            }
        }
    }
    return out;
}

/// Splits "name_suffix" into (ifaceName, Attr) by longest-suffix match,
/// given the set of declared interface names.
struct FieldRef {
    std::string iface;
    sva::Attr attr;
};

std::optional<FieldRef> resolveField(const std::string& field,
                                     const std::vector<Transaction>& transactions) {
    // Try every declared interface name as a prefix.
    for (const auto& t : transactions) {
        for (const auto* iface : {&t.req, &t.resp}) {
            const std::string& name = iface->name;
            if (field.size() <= name.size() + 1) continue;
            if (field.rfind(name + "_", 0) != 0) continue;
            std::string suffix = field.substr(name.size() + 1);
            auto attr = sva::attrFromSuffix(suffix);
            if (attr) return FieldRef{name, *attr};
        }
    }
    return std::nullopt;
}

} // namespace

AnnotationSet parseAnnotations(const std::string& rtlText, const std::string& bufferName,
                               util::DiagEngine& diags) {
    AnnotationSet set;
    auto rawLines = extractAnnotationLines(rtlText);
    set.annotationLines = static_cast<int>(rawLines.size());

    auto locOf = [&](int lineNo) {
        return SourceLoc{bufferName, static_cast<uint32_t>(lineNo), 1};
    };

    // Pass 1: transaction declarations `name: P -in> Q`.
    std::vector<const RawLine*> attrLines;
    for (const auto& raw : rawLines) {
        std::string_view line = util::trim(raw.text);
        size_t colon = line.find(':');
        size_t eq = line.find('=');
        bool isDecl = colon != std::string_view::npos &&
                      (eq == std::string_view::npos || colon < eq) &&
                      (line.find("-in>") != std::string_view::npos ||
                       line.find("-out>") != std::string_view::npos);
        if (!isDecl) {
            attrLines.push_back(&raw);
            continue;
        }
        Transaction t;
        t.line = raw.lineNo;
        t.loc = locOf(raw.lineNo);
        t.name = std::string(util::trim(line.substr(0, colon)));
        if (!util::isIdentifier(t.name))
            throw FrontendError(locOf(raw.lineNo), "bad transaction name '" + t.name + "'");
        std::string_view rel = util::trim(line.substr(colon + 1));
        size_t arrow = rel.find("-in>");
        size_t arrowLen = 4;
        t.incoming = true;
        if (arrow == std::string_view::npos) {
            arrow = rel.find("-out>");
            arrowLen = 5;
            t.incoming = false;
        }
        if (arrow == std::string_view::npos)
            throw FrontendError(locOf(raw.lineNo), "expected '-in>' or '-out>' relation");
        t.req.name = std::string(util::trim(rel.substr(0, arrow)));
        t.resp.name = std::string(util::trim(rel.substr(arrow + arrowLen)));
        if (!util::isIdentifier(t.req.name) || !util::isIdentifier(t.resp.name))
            throw FrontendError(locOf(raw.lineNo),
                                "bad interface names in relation '" + std::string(rel) + "'");
        set.transactions.push_back(std::move(t));
    }

    // Pass 2: attribute definitions.
    for (const RawLine* raw : attrLines) {
        std::string_view line = util::trim(raw->text);
        if (line.empty()) continue;

        // `input SIG` / `output SIG`: implicit-definition hints; the port
        // scan discovers these automatically, so just validate the field.
        bool isDirHint = false;
        for (const char* kw : {"input ", "output "}) {
            if (line.rfind(kw, 0) == 0) {
                isDirHint = true;
                line = util::trim(line.substr(std::string_view(kw).size()));
                break;
            }
        }

        // Optional width `[msb:0]`.
        std::string widthMsb;
        if (!line.empty() && line.front() == '[') {
            size_t close = line.find(']');
            if (close == std::string_view::npos)
                throw FrontendError(locOf(raw->lineNo), "unterminated width in annotation");
            std::string_view range = line.substr(1, close - 1);
            size_t colon = range.rfind(':');
            if (colon == std::string_view::npos || util::trim(range.substr(colon + 1)) != "0")
                throw FrontendError(locOf(raw->lineNo),
                                    "annotation widths must have the form [msb:0]");
            widthMsb = std::string(util::trim(range.substr(0, colon)));
            line = util::trim(line.substr(close + 1));
        }

        std::string field;
        std::string rhs;
        if (isDirHint) {
            field = std::string(util::trim(line));
            rhs = field; // Signal is its own definition.
        } else {
            size_t eq = line.find('=');
            if (eq == std::string_view::npos)
                throw FrontendError(locOf(raw->lineNo),
                                    "expected '=' in annotation '" + std::string(line) + "'");
            field = std::string(util::trim(line.substr(0, eq)));
            rhs = std::string(util::trim(line.substr(eq + 1)));
            if (rhs.empty())
                throw FrontendError(locOf(raw->lineNo), "empty expression in annotation");
        }
        if (!util::isIdentifier(field))
            throw FrontendError(locOf(raw->lineNo), "bad field name '" + field + "'");

        auto ref = resolveField(field, set.transactions);
        if (!ref)
            throw FrontendError(locOf(raw->lineNo),
                                "field '" + field +
                                    "' does not match any declared interface and legal suffix");

        // Validate the expression parses as Verilog.
        try {
            (void)verilog::Parser::parseExpression(rhs, bufferName);
        } catch (const FrontendError& err) {
            throw FrontendError(locOf(raw->lineNo),
                                "bad expression in annotation: " + std::string(err.what()));
        }

        AttrDef def;
        def.attr = ref->attr;
        def.iface = ref->iface;
        def.rhs = rhs;
        def.widthMsb = widthMsb;
        def.implicit = false;
        def.line = raw->lineNo;
        def.loc = locOf(raw->lineNo);

        bool placed = false;
        for (auto& t : set.transactions) {
            for (auto* iface : {&t.req, &t.resp}) {
                if (iface->name != ref->iface) continue;
                if (iface->has(ref->attr)) {
                    diags.warning(locOf(raw->lineNo),
                                  "duplicate definition of '" + field + "' ignored");
                } else {
                    iface->attrs.emplace(ref->attr, def);
                }
                placed = true;
            }
        }
        if (!placed)
            throw FrontendError(locOf(raw->lineNo), "internal: unplaced attribute " + field);
    }

    return set;
}

} // namespace autosva::core
