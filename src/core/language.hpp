// Parser for the AutoSVA annotation language (paper Table I).
//
// Annotations live in comments in the interface-declaration section of the
// RTL file, either inside a multi-line region:
//
//   /*AUTOSVA
//   lsu_load: lsu_req -in> lsu_res
//   lsu_req_val = lsu_valid_i && fu_data_i_fu == LOAD
//   [TRANS_ID_BITS-1:0] lsu_req_transid = fu_data_i_trans_id
//   */
//
// or on single lines prefixed with `//AUTOSVA`. Grammar (Table I):
//
//   TRANSACTION ::= TNAME: RELATION
//   RELATION    ::= P -in> Q | P -out> Q
//   ATTRIB      ::= SIG = ASSIGN | input SIG | output SIG
//   SIG         ::= [STR:0] FIELD | FIELD
//   FIELD       ::= P SUFFIX | Q SUFFIX
//   SUFFIX      ::= val|ack|transid|transid_unique|active|stable|data
//
// `rdy` is accepted as a synonym for `ack` (the paper uses both spellings).
#pragma once

#include <string>
#include <vector>

#include "core/transaction.hpp"
#include "util/diagnostics.hpp"

namespace autosva::core {

struct AnnotationSet {
    std::vector<Transaction> transactions;
    /// Lines of annotations written by the designer (the paper's
    /// engineering-effort metric: "110 LoC of annotations").
    int annotationLines = 0;
};

/// Scans `rtlText` for AutoSVA annotations and parses them. Unattributable
/// or malformed lines raise util::FrontendError with the source line.
[[nodiscard]] AnnotationSet parseAnnotations(const std::string& rtlText,
                                             const std::string& bufferName,
                                             util::DiagEngine& diags);

} // namespace autosva::core
