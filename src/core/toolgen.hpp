// FV tool setup generation — AutoSVA step (5). Emits ready-to-run
// JasperGold TCL and SymbiYosys .sby scripts for the generated testbench
// (for use with external tools), mirroring the original tool's backends.
#pragma once

#include <string>
#include <vector>

#include "core/transaction.hpp"

namespace autosva::core {

struct ToolGenInput {
    std::string dutName;
    std::string propertyModuleName;
    std::string clockName;
    std::string resetName;
    bool resetActiveLow = true;
    /// File names as they would be written to disk.
    std::vector<std::string> rtlFiles;
    std::string propertyFileName;
    std::string bindFileName;
};

[[nodiscard]] std::string generateJasperTcl(const ToolGenInput& input);
[[nodiscard]] std::string generateSbyFile(const ToolGenInput& input, int depth = 25);

} // namespace autosva::core
