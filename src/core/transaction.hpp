// Transaction model: the unified abstraction AutoSVA builds from interface
// annotations (paper §III-A). A transaction connects two interfaces P and Q
// with a temporal implication (incoming "-in>" or outgoing "-out>"), each
// carrying attribute signals (val/ack/transid/... per Table I).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sva/catalog.hpp"
#include "util/diagnostics.hpp"

namespace autosva::core {

using sva::Attr;

/// One attribute definition: explicit (annotation `P_attr = expr`) or
/// implicit (an RTL port following the naming convention).
struct AttrDef {
    Attr attr = Attr::Val;
    std::string iface;      ///< Interface prefix (the P or Q name).
    std::string rhs;        ///< Expression text; for implicit defs, the port name.
    std::string widthMsb;   ///< MSB expression text of `[msb:0]`; empty = 1 bit.
    bool implicit = false;
    int line = 0; ///< Annotation line (0 for implicit).
    /// Where the designer wrote this definition (the annotation line in the
    /// real RTL file; the transaction declaration for implicit defs).
    /// Threaded through generated properties into verification reports.
    util::SourceLoc loc;
};

struct InterfaceDesc {
    std::string name;
    std::map<Attr, AttrDef> attrs;

    [[nodiscard]] bool has(Attr attr) const { return attrs.count(attr) != 0; }
    [[nodiscard]] const AttrDef* get(Attr attr) const {
        auto it = attrs.find(attr);
        return it == attrs.end() ? nullptr : &it->second;
    }
};

struct Transaction {
    std::string name;
    bool incoming = true; ///< -in>: DUT receives request P, must produce Q.
    InterfaceDesc req;    ///< P
    InterfaceDesc resp;   ///< Q
    int line = 0;
    /// Annotation line declaring `name: P -in> Q` in the real RTL file.
    util::SourceLoc loc;

    [[nodiscard]] bool tracksTransid() const {
        return req.has(Attr::Transid) && resp.has(Attr::Transid);
    }
    [[nodiscard]] bool tracksData() const {
        return req.has(Attr::Data) && resp.has(Attr::Data);
    }
};

// ---------------------------------------------------------------------------
// DUT interface description (from the module declaration section)
// ---------------------------------------------------------------------------

struct PortInfo {
    std::string name;
    bool isInput = true;
    std::string widthMsb; ///< MSB expression text; empty = 1 bit.
    int widthBits = 1;    ///< Evaluated width; -1 if unknown (parametric).
};

struct ParamInfo {
    std::string name;
    std::string defaultText;
    uint64_t value = 0;
    bool known = false;
};

struct DutInterface {
    std::string moduleName;
    std::vector<PortInfo> ports;
    std::vector<ParamInfo> params;
    std::string clockName;
    std::string resetName;
    bool resetActiveLow = true;

    [[nodiscard]] const PortInfo* findPort(const std::string& name) const {
        for (const auto& p : ports)
            if (p.name == name) return &p;
        return nullptr;
    }
    [[nodiscard]] const ParamInfo* findParam(const std::string& name) const {
        for (const auto& p : params)
            if (p.name == name) return &p;
        return nullptr;
    }
};

/// Completes transactions against the DUT interface:
///  - adds implicit attribute definitions from ports matching `P_<suffix>`
///  - validates the paper's error conditions (transid/data on one side only,
///    mismatched widths, missing val, stable without ack)
/// Throws util::FrontendError on hard errors; lints go to `diags`.
void buildTransactions(std::vector<Transaction>& transactions, const DutInterface& dut,
                       util::DiagEngine& diags);

/// Evaluates a width expression (e.g. "TRANS_ID_BITS-1") against the DUT
/// parameters; returns -1 if not statically evaluable. The result is the
/// bit count (msb+1).
[[nodiscard]] int evalWidth(const std::string& msbText, const DutInterface& dut);

} // namespace autosva::core
