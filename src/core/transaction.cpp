#include "core/transaction.hpp"

#include <unordered_set>

#include "verilog/parser.hpp"

namespace autosva::core {

using util::FrontendError;

namespace {

/// Tiny constant evaluator over parameter values for width expressions.
std::optional<uint64_t> evalConstExpr(const verilog::Expr& e, const DutInterface& dut) {
    using verilog::Expr;
    switch (e.kind) {
    case Expr::Kind::Number:
        return e.intValue;
    case Expr::Kind::Ident: {
        const ParamInfo* p = dut.findParam(e.name);
        if (p && p->known) return p->value;
        return std::nullopt;
    }
    case Expr::Kind::Unary: {
        auto a = evalConstExpr(*e.operands[0], dut);
        if (!a) return std::nullopt;
        switch (e.unaryOp) {
        case verilog::UnaryOp::Plus: return *a;
        case verilog::UnaryOp::Minus: return static_cast<uint64_t>(-static_cast<int64_t>(*a));
        case verilog::UnaryOp::LogicNot: return *a == 0 ? 1 : 0;
        case verilog::UnaryOp::BitNot: return ~*a;
        default: return std::nullopt;
        }
    }
    case Expr::Kind::Binary: {
        auto a = evalConstExpr(*e.operands[0], dut);
        auto b = evalConstExpr(*e.operands[1], dut);
        if (!a || !b) return std::nullopt;
        using BO = verilog::BinaryOp;
        switch (e.binaryOp) {
        case BO::Add: return *a + *b;
        case BO::Sub: return *a - *b;
        case BO::Mul: return *a * *b;
        case BO::Div: return *b ? *a / *b : std::optional<uint64_t>{};
        case BO::Mod: return *b ? *a % *b : std::optional<uint64_t>{};
        case BO::Shl: return *a << *b;
        case BO::Shr: return *a >> *b;
        default: return std::nullopt;
        }
    }
    case Expr::Kind::Call: {
        if (e.name == "$clog2" && e.operands.size() == 1) {
            auto a = evalConstExpr(*e.operands[0], dut);
            if (!a) return std::nullopt;
            uint64_t v = *a;
            if (v <= 1) return 0;
            uint64_t bits = 0, x = v - 1;
            while (x) {
                ++bits;
                x >>= 1;
            }
            return bits;
        }
        return std::nullopt;
    }
    default:
        return std::nullopt;
    }
}

} // namespace

int evalWidth(const std::string& msbText, const DutInterface& dut) {
    if (msbText.empty()) return 1;
    try {
        auto expr = verilog::Parser::parseExpression(msbText, "<width>");
        auto v = evalConstExpr(*expr, dut);
        if (!v) return -1;
        return static_cast<int>(*v) + 1;
    } catch (const FrontendError&) {
        return -1;
    }
}

namespace {

void addImplicitAttrs(InterfaceDesc& iface, const DutInterface& dut,
                      const util::SourceLoc& txnLoc) {
    const std::string prefix = iface.name + "_";
    for (const auto& port : dut.ports) {
        if (port.name.rfind(prefix, 0) != 0) continue;
        std::string suffix = port.name.substr(prefix.size());
        auto attr = sva::attrFromSuffix(suffix);
        if (!attr) continue;
        if (iface.has(*attr)) continue; // Explicit definition wins.
        AttrDef def;
        def.attr = *attr;
        def.iface = iface.name;
        def.rhs = port.name;
        def.widthMsb = port.widthMsb;
        def.implicit = true;
        def.loc = txnLoc; // Best available provenance: the declaring relation.
        iface.attrs.emplace(*attr, std::move(def));
    }
}

void checkSymmetricAttr(const Transaction& t, Attr attr, const DutInterface& dut,
                        util::DiagEngine& diags) {
    bool onReq = t.req.has(attr);
    bool onResp = t.resp.has(attr);
    if (onReq != onResp) {
        throw FrontendError({}, "transaction '" + t.name + "': attribute '" +
                                    sva::attrName(attr) +
                                    "' must be defined on both interfaces (" +
                                    (onReq ? t.req.name : t.resp.name) + " only)");
    }
    if (!onReq) return;
    int wr = evalWidth(t.req.get(attr)->widthMsb, dut);
    int ws = evalWidth(t.resp.get(attr)->widthMsb, dut);
    if (wr > 0 && ws > 0 && wr != ws) {
        throw FrontendError({}, "transaction '" + t.name + "': mismatched '" +
                                    sva::attrName(attr) + "' widths (" + std::to_string(wr) +
                                    " vs " + std::to_string(ws) + ")");
    }
    if ((wr < 0 || ws < 0) && t.req.get(attr)->widthMsb != t.resp.get(attr)->widthMsb) {
        diags.warning({}, "transaction '" + t.name + "': cannot prove '" +
                              sva::attrName(attr) + "' widths equal (\"" +
                              t.req.get(attr)->widthMsb + "\" vs \"" +
                              t.resp.get(attr)->widthMsb + "\")");
    }
}

} // namespace

void buildTransactions(std::vector<Transaction>& transactions, const DutInterface& dut,
                       util::DiagEngine& diags) {
    std::unordered_set<std::string> names;
    for (auto& t : transactions) {
        if (!names.insert(t.name).second)
            throw FrontendError({}, "duplicate transaction name '" + t.name + "'");
        if (t.req.name == t.resp.name)
            throw FrontendError({}, "transaction '" + t.name +
                                        "': request and response interfaces must differ");

        addImplicitAttrs(t.req, dut, t.loc);
        addImplicitAttrs(t.resp, dut, t.loc);

        // `transid_unique` both marks uniqueness and provides the tracking
        // ID itself (the request side commonly annotates only it).
        for (auto* iface : {&t.req, &t.resp}) {
            if (iface->has(Attr::TransidUnique) && !iface->has(Attr::Transid)) {
                AttrDef alias = *iface->get(Attr::TransidUnique);
                alias.attr = Attr::Transid;
                iface->attrs.emplace(Attr::Transid, std::move(alias));
            }
        }

        if (!t.req.has(Attr::Val))
            throw FrontendError({}, "transaction '" + t.name + "': interface '" + t.req.name +
                                        "' has no 'val' attribute (explicit or implicit)");
        if (!t.resp.has(Attr::Val))
            throw FrontendError({}, "transaction '" + t.name + "': interface '" + t.resp.name +
                                        "' has no 'val' attribute (explicit or implicit)");

        checkSymmetricAttr(t, Attr::Transid, dut, diags);
        checkSymmetricAttr(t, Attr::Data, dut, diags);

        if (t.tracksData() && !t.tracksTransid() && t.req.has(Attr::TransidUnique))
            diags.note({}, "transaction '" + t.name +
                               "': data integrity without transid tracks a single "
                               "outstanding transaction");

        for (const auto* iface : {&t.req, &t.resp}) {
            if (iface->has(Attr::Stable) && !iface->has(Attr::Ack)) {
                diags.warning({}, "transaction '" + t.name + "': interface '" + iface->name +
                                      "' defines 'stable' without 'ack'; stability is checked "
                                      "against val only");
            }
        }

        // Direction lint: for incoming transactions the request val should be
        // a DUT input and the response val a DUT output (mirrored for
        // outgoing). Only checkable for implicit (port-backed) attributes.
        auto lintDir = [&](const InterfaceDesc& iface, bool expectInput) {
            const AttrDef* val = iface.get(Attr::Val);
            if (!val || !val->implicit) return;
            const PortInfo* port = dut.findPort(val->rhs);
            if (port && port->isInput != expectInput) {
                diags.warning({}, "transaction '" + t.name + "': '" + val->rhs + "' is an " +
                                      (port->isInput ? "input" : "output") + " but the " +
                                      (t.incoming ? "-in>" : "-out>") +
                                      " relation suggests otherwise");
            }
        };
        lintDir(t.req, t.incoming);
        lintDir(t.resp, !t.incoming);
    }
}

} // namespace autosva::core
