// Property-file generation: AutoSVA steps (3) signal generator and
// (4) property generator. Produces the SystemVerilog property module,
// the bind file, and generation statistics.
#pragma once

#include <string>
#include <vector>

#include "core/transaction.hpp"

namespace autosva::core {

struct PropGenOptions {
    /// Flip all assumptions into assertions (the paper's ASSERT_INPUTS /
    /// "-AS" submodule mode).
    bool assertInputs = false;
    /// Emit X-propagation assertions (checked in simulation only).
    bool includeXprop = true;
    /// Emit handshake/response cover properties.
    bool includeCovers = true;
    /// Bound on simultaneously outstanding transactions (counter sizing and
    /// the max-outstanding environment constraint).
    int maxOutstanding = 8;
};

struct GeneratedProperty {
    std::string label;
    sva::Attr sourceAttr;      ///< Table II attribute that produced it.
    std::string transaction;
    bool isAssert = false;
    bool isCover = false;
    bool isLiveness = false;
    bool isXprop = false;
};

struct PropGenResult {
    std::string propertyModuleName;
    std::string propertyFile; ///< SystemVerilog text.
    std::string bindFile;     ///< SystemVerilog bind directive.
    std::vector<GeneratedProperty> properties;

    [[nodiscard]] int numProperties() const { return static_cast<int>(properties.size()); }
    [[nodiscard]] int countAsserts() const;
    [[nodiscard]] int countAssumes() const;
    [[nodiscard]] int countCovers() const;
    [[nodiscard]] int countLiveness() const;
    [[nodiscard]] int countXprop() const;
};

/// Generates the formal testbench text for the DUT + transactions.
[[nodiscard]] PropGenResult generateProperties(const DutInterface& dut,
                                               const std::vector<Transaction>& transactions,
                                               const PropGenOptions& opts);

} // namespace autosva::core
