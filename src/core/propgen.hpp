// Property-file generation: AutoSVA steps (3) signal generator and
// (4) property generator.
//
// The generator constructs a typed `verilog::` AST — the property module
// (wires, always_ff tracking counters, AssertionItems) plus the bind
// directive — and every textual artifact is a projection of that AST
// rendered by `verilog::Printer` (printModule / printBind). The AST is
// also what verification consumes: `core::elaborateWithFT` hands it to
// `ir::elaborateFiles` directly, so generated property text is never
// re-lexed or re-parsed. Designer-written fragments (annotation
// expressions, width texts) keep their verbatim spelling via
// Expr::origText, and every generated property carries the SourceLoc of
// the annotation that produced it (GeneratedProperty::sourceLoc ->
// AssertionItem::loc -> ir::Obligation::loc -> report provenance).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/transaction.hpp"
#include "verilog/ast.hpp"

namespace autosva::core {

struct PropGenOptions {
    /// Flip all assumptions into assertions (the paper's ASSERT_INPUTS /
    /// "-AS" submodule mode).
    bool assertInputs = false;
    /// Emit X-propagation assertions (checked in simulation only).
    bool includeXprop = true;
    /// Emit handshake/response cover properties.
    bool includeCovers = true;
    /// Bound on simultaneously outstanding transactions (counter sizing and
    /// the max-outstanding environment constraint).
    int maxOutstanding = 8;
};

struct GeneratedProperty {
    std::string label;
    sva::Attr sourceAttr;      ///< Table II attribute that produced it.
    std::string transaction;
    bool isAssert = false;
    bool isCover = false;
    bool isLiveness = false;
    bool isXprop = false;
    /// The designer annotation (file:line) this property was derived from.
    util::SourceLoc sourceLoc;
};

struct PropGenResult {
    std::string propertyModuleName;
    /// The generated testbench as AST: modules[0] is the property module,
    /// binds[0] the bind directive. This is what elaboration consumes.
    std::shared_ptr<const verilog::SourceFile> ast;
    std::string propertyFile; ///< Printer projection of ast->modules[0].
    std::string bindFile;     ///< Printer projection of ast->binds[0].
    std::vector<GeneratedProperty> properties;

    [[nodiscard]] int numProperties() const { return static_cast<int>(properties.size()); }
    [[nodiscard]] int countAsserts() const;
    [[nodiscard]] int countAssumes() const;
    [[nodiscard]] int countCovers() const;
    [[nodiscard]] int countLiveness() const;
    [[nodiscard]] int countXprop() const;
};

/// Generates the formal testbench (AST + printed projections) for the DUT
/// + transactions.
[[nodiscard]] PropGenResult generateProperties(const DutInterface& dut,
                                               const std::vector<Transaction>& transactions,
                                               const PropGenOptions& opts);

} // namespace autosva::core
