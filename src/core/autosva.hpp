// AutoSVA facade: the public entry points of the framework.
//
//   generateFT()  — annotated RTL text -> complete formal testbench
//                   (property module, bind file, JasperGold TCL, SymbiYosys
//                   .sby, statistics). This is the paper's contribution:
//                   "AutoSVA generates FTs in under a second".
//
//   verify()      — run a generated testbench end-to-end with the built-in
//                   model checker (BMC + k-induction + PDR + liveness-to-
//                   safety) and return a per-property report. Substitutes
//                   for the JasperGold runs in the paper's evaluation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/language.hpp"
#include "core/propgen.hpp"
#include "formal/engine.hpp"
#include "sva/report.hpp"

namespace autosva::core {

struct AutoSvaOptions {
    std::string dutName;    ///< Empty: first module in the source.
    std::string clockName;  ///< Empty: auto-detect.
    std::string resetName;  ///< Empty: auto-detect.
    /// Path (or logical name) of the annotated RTL buffer. Used as the
    /// diagnostic buffer name and as the provenance file every generated
    /// property cites. Empty: "dut.sv".
    std::string sourcePath;
    bool assertInputs = false; ///< "-AS": assumptions become assertions.
    bool includeXprop = true;
    bool includeCovers = true;
    int maxOutstanding = 8;
    /// Worker-thread count for property discharge when this options object
    /// drives an end-to-end generateAndVerify() run and the VerifyOptions
    /// leave engine.jobs at its default (<= 1). A VerifyOptions::engine.jobs
    /// value > 1 takes precedence over this field.
    int jobs = 1;
    /// Persistent proof-cache directory for generateAndVerify() runs when
    /// the VerifyOptions leave engine.cacheDir empty (empty: no cache). See
    /// formal::EngineOptions::cacheDir.
    std::string cacheDir;
};

/// A complete generated formal testbench. The property module + bind
/// directive exist twice: as the typed AST (`propertyAst`, what the
/// verification path elaborates — no re-parse of generated text) and as
/// printed text projections (`propertyFile`/`bindFile`, what `autosva gen`
/// writes for external tools).
struct FormalTestbench {
    std::string dutName;
    std::string propertyModuleName;
    /// Typed AST of the property module and bind directive; the printed
    /// artifacts below are printer projections of exactly this tree.
    std::shared_ptr<const verilog::SourceFile> propertyAst;
    std::string propertyFile;
    std::string bindFile;
    std::string jasperTcl;
    std::string sbyFile;

    std::vector<GeneratedProperty> properties;
    int annotationLines = 0;
    double generationSeconds = 0.0;

    [[nodiscard]] int numProperties() const { return static_cast<int>(properties.size()); }
    [[nodiscard]] int numAssertions() const;
    [[nodiscard]] int numAssumptions() const;
    [[nodiscard]] int numCovers() const;
    [[nodiscard]] int numLiveness() const;
};

/// Generates a formal testbench from annotated RTL. Throws
/// util::FrontendError on malformed annotations. Diagnostics (lints,
/// warnings) accumulate in `diags`.
[[nodiscard]] FormalTestbench generateFT(const std::string& rtlSource,
                                         const AutoSvaOptions& opts, util::DiagEngine& diags);

struct VerifyOptions {
    formal::EngineOptions engine;
    /// Diagnostic buffer names parallel to the `rtlSources` argument of
    /// verify()/elaborateWithFT (real CLI paths, so parse/elaboration
    /// errors cite actual files). Missing entries fall back to "dut.sv"
    /// for index 0 and "source<i>" beyond.
    std::vector<std::string> sourcePaths;
    /// Additional RTL sources (submodule definitions used by the DUT).
    std::vector<std::string> extraSources;
    /// Linked submodule testbenches (the paper's "-AM" flow): their property
    /// modules are bound to the submodule instances inside the DUT.
    std::vector<const FormalTestbench*> submoduleFts;
    /// Extra top-level parameter overrides.
    std::unordered_map<std::string, uint64_t> paramOverrides;
};

/// Verifies `ft` against the DUT using the built-in engine. `rtlSources`
/// must contain the DUT module (and any submodules it instantiates).
[[nodiscard]] sva::VerificationReport verify(const std::vector<std::string>& rtlSources,
                                             const FormalTestbench& ft,
                                             const VerifyOptions& opts, util::DiagEngine& diags);

/// One-call convenience: generate + verify.
[[nodiscard]] sva::VerificationReport generateAndVerify(const std::string& rtlSource,
                                                        const AutoSvaOptions& genOpts,
                                                        const VerifyOptions& verifyOpts,
                                                        util::DiagEngine& diags);

/// Builds the elaborated design (DUT + bound property modules) that verify()
/// checks — exposed for simulation reuse (§III-B property checking in
/// simulation) and for tests.
[[nodiscard]] std::unique_ptr<ir::Design> elaborateWithFT(
    const std::vector<std::string>& rtlSources, const FormalTestbench& ft,
    const VerifyOptions& opts, util::DiagEngine& diags, bool tieReset = true);

} // namespace autosva::core
